#ifndef WMP_CORE_FEATURIZER_H_
#define WMP_CORE_FEATURIZER_H_

/// \file featurizer.h
/// Bridges query records to ML inputs: feature matrices and label vectors
/// over arbitrary row subsets — and the pluggable `Featurizer` interface
/// the template model featurizes through on the serving cold path.

#include <memory>
#include <string_view>
#include <vector>

#include "ml/linalg.h"
#include "util/status.h"
#include "workloads/query_record.h"

namespace wmp::core {

/// \brief Maps one query record to a fixed-width feature row.
///
/// The cold path (parse -> plan -> featurize -> scale -> assign) writes
/// rows straight into a reusable scratch matrix, so the interface is
/// fill-in-place rather than return-a-vector. Implementations must be
/// const-thread-safe: the batch pipeline featurizes row blocks in
/// parallel through one shared instance.
class Featurizer {
 public:
  virtual ~Featurizer() = default;

  /// Feature row width; fixed for the lifetime of the instance.
  virtual size_t dim() const = 0;

  /// Writes `record`'s feature row into `out[0..dim())`.
  virtual Status FeaturizeInto(const workloads::QueryRecord& record,
                               double* out) const = 0;

  /// Short diagnostic name ("plan-bag", ...).
  virtual std::string_view name() const = 0;
};

/// \brief Default featurizer: the paper's flat bag of plan features — two
/// slots per operator type (instance count, summed estimated output
/// cardinality), optionally log1p-compressing the cardinality slots.
///
/// Prefers the record's precomputed `plan_features` (a gather); falls back
/// to walking `record.plan` directly for cold records that were parsed and
/// planned but never pre-featurized.
class PlanFeaturizer final : public Featurizer {
 public:
  explicit PlanFeaturizer(bool log_transform_cards = false)
      : log_transform_cards_(log_transform_cards) {}

  size_t dim() const override;
  Status FeaturizeInto(const workloads::QueryRecord& record,
                       double* out) const override;
  std::string_view name() const override { return "plan-bag"; }

 private:
  bool log_transform_cards_;
};

/// Plan-feature matrix (TR2 output) for the selected records.
ml::Matrix PlanFeatureMatrix(const std::vector<workloads::QueryRecord>& records,
                             const std::vector<uint32_t>& indices);

/// Actual peak memory labels (MB) for the selected records.
std::vector<double> ActualMemoryVector(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& indices);

/// DBMS heuristic estimates (MB) for the selected records.
std::vector<double> DbmsEstimateVector(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& indices);

/// Identity index vector [0, n).
std::vector<uint32_t> AllIndices(size_t n);

}  // namespace wmp::core

#endif  // WMP_CORE_FEATURIZER_H_
