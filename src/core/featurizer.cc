#include "core/featurizer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "plan/features.h"

namespace wmp::core {

size_t PlanFeaturizer::dim() const { return plan::kPlanFeatureDim; }

Status PlanFeaturizer::FeaturizeInto(const workloads::QueryRecord& record,
                                     double* out) const {
  if (record.plan_features.size() == plan::kPlanFeatureDim) {
    std::copy(record.plan_features.begin(), record.plan_features.end(), out);
  } else if (record.plan != nullptr) {
    plan::ExtractPlanFeaturesInto(*record.plan, out);
  } else if (record.plan_features.empty()) {
    return Status::InvalidArgument(
        "record has neither a plan nor precomputed plan features");
  } else {
    return Status::InvalidArgument("record's plan-feature length is wrong");
  }
  if (log_transform_cards_) {
    // Odd slots hold summed cardinalities (plan/features.h layout).
    for (size_t i = 1; i < plan::kPlanFeatureDim; i += 2) {
      out[i] = std::log1p(out[i]);
    }
  }
  return Status::OK();
}

ml::Matrix PlanFeatureMatrix(const std::vector<workloads::QueryRecord>& records,
                             const std::vector<uint32_t>& indices) {
  if (indices.empty()) return {};
  const size_t dim = records[indices[0]].plan_features.size();
  ml::Matrix x(indices.size(), dim);
  for (size_t i = 0; i < indices.size(); ++i) {
    const auto& f = records[indices[i]].plan_features;
    std::copy(f.begin(), f.end(), x.RowPtr(i));
  }
  return x;
}

std::vector<double> ActualMemoryVector(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& indices) {
  std::vector<double> y(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    y[i] = records[indices[i]].actual_memory_mb;
  }
  return y;
}

std::vector<double> DbmsEstimateVector(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& indices) {
  std::vector<double> y(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    y[i] = records[indices[i]].dbms_estimate_mb;
  }
  return y;
}

std::vector<uint32_t> AllIndices(size_t n) {
  std::vector<uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

}  // namespace wmp::core
