#include "core/featurizer.h"

#include <numeric>

namespace wmp::core {

ml::Matrix PlanFeatureMatrix(const std::vector<workloads::QueryRecord>& records,
                             const std::vector<uint32_t>& indices) {
  if (indices.empty()) return {};
  const size_t dim = records[indices[0]].plan_features.size();
  ml::Matrix x(indices.size(), dim);
  for (size_t i = 0; i < indices.size(); ++i) {
    const auto& f = records[indices[i]].plan_features;
    std::copy(f.begin(), f.end(), x.RowPtr(i));
  }
  return x;
}

std::vector<double> ActualMemoryVector(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& indices) {
  std::vector<double> y(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    y[i] = records[indices[i]].actual_memory_mb;
  }
  return y;
}

std::vector<double> DbmsEstimateVector(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& indices) {
  std::vector<double> y(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    y[i] = records[indices[i]].dbms_estimate_mb;
  }
  return y;
}

std::vector<uint32_t> AllIndices(size_t n) {
  std::vector<uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

}  // namespace wmp::core
