#ifndef WMP_CORE_SINGLE_WMP_H_
#define WMP_CORE_SINGLE_WMP_H_

/// \file single_wmp.h
/// The SingleWMP baselines (paper §IV "Baselines"): per-query memory
/// regressors whose workload estimate is the sum of member-query estimates
/// (eq. 11), plus the non-ML SingleWMP-DBMS baseline that sums the
/// optimizer's heuristic estimates.

#include <memory>
#include <vector>

#include "core/workload.h"
#include "ml/regressor.h"
#include "ml/scaler.h"
#include "workloads/query_record.h"

namespace wmp::ml {
class CompiledEnsemble;
}  // namespace wmp::ml

namespace wmp::core {

/// Configuration of a SingleWMP model.
struct SingleWmpOptions {
  ml::RegressorKind regressor = ml::RegressorKind::kGbt;
  uint64_t seed = 42;
};

/// \brief Per-query learned memory estimator, summed per workload.
class SingleWmpModel {
 public:
  SingleWmpModel() = default;

  /// Fits the per-query regressor on (plan features, actual memory) pairs.
  /// With a `bin_cache`, tree-family regressors reuse its binned design —
  /// the experiment harness trains DT/RF/GBT on the identical scaled matrix,
  /// so the cache bins it once instead of once per family.
  static Result<SingleWmpModel> Train(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<uint32_t>& train_indices,
      const SingleWmpOptions& options,
      ml::BinnedDatasetCache* bin_cache = nullptr);

  /// Memory estimate (MB) of one query.
  Result<double> PredictQuery(const workloads::QueryRecord& record) const;

  /// Workload estimate: sum of member-query estimates (eq. 11).
  Result<double> PredictWorkload(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<uint32_t>& batch) const;

  /// Predicts many workloads.
  Result<std::vector<double>> PredictWorkloads(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<WorkloadBatch>& batches) const;

  const ml::Regressor& regressor() const { return *regressor_; }

  /// Bin-space compiled form of the regressor (ml/compiled_tree.h); null
  /// for non-tree families. PredictQuery routes through it when present —
  /// bitwise the reference prediction.
  const ml::CompiledEnsemble* compiled() const { return compiled_.get(); }
  /// Routing toggle (default on); off forces the reference regressor path.
  void set_compiled_inference(bool on) { use_compiled_ = on; }
  bool compiled_inference() const { return use_compiled_; }

  /// Regressor fit time of the last Train call (ms).
  double train_ms() const { return train_ms_; }
  /// Phase breakdown of the regressor fit (tree families only).
  ml::FitTiming fit_timing() const {
    return regressor_ ? regressor_->fit_timing() : ml::FitTiming{};
  }
  /// Serialized regressor size in bytes (Fig. 8).
  Result<size_t> RegressorBytes() const;

 private:
  SingleWmpOptions options_;
  ml::StandardScaler scaler_;
  std::unique_ptr<ml::Regressor> regressor_;
  std::shared_ptr<const ml::CompiledEnsemble> compiled_;
  bool use_compiled_ = true;
  double train_ms_ = 0.0;
};

/// \brief SingleWMP-DBMS: the state of practice. Sums the optimizer's
/// heuristic per-query estimates over the workload; no ML, no training.
double DbmsWorkloadEstimate(const std::vector<workloads::QueryRecord>& records,
                            const std::vector<uint32_t>& batch);

/// DBMS estimates for many workloads.
std::vector<double> DbmsWorkloadEstimates(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<WorkloadBatch>& batches);

}  // namespace wmp::core

#endif  // WMP_CORE_SINGLE_WMP_H_
