#include "core/histogram.h"

#include "util/strings.h"

namespace wmp::core {

Result<std::vector<double>> BuildHistogram(const std::vector<int>& template_ids,
                                           int num_templates) {
  if (num_templates < 1) {
    return Status::InvalidArgument("histogram needs >= 1 bin");
  }
  std::vector<double> h(static_cast<size_t>(num_templates), 0.0);
  for (int id : template_ids) {
    if (id < 0 || id >= num_templates) {
      return Status::OutOfRange(
          StrFormat("template id %d outside [0, %d)", id, num_templates));
    }
    h[static_cast<size_t>(id)] += 1.0;
  }
  return h;
}

double HistogramMass(const std::vector<double>& histogram) {
  double mass = 0.0;
  for (double c : histogram) mass += c;
  return mass;
}

}  // namespace wmp::core
