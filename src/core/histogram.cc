#include "core/histogram.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "util/parallel.h"
#include "util/strings.h"

namespace wmp::core {

Result<std::vector<double>> BuildHistogram(const std::vector<int>& template_ids,
                                           int num_templates) {
  if (num_templates < 1) {
    return Status::InvalidArgument("histogram needs >= 1 bin");
  }
  std::vector<double> h(static_cast<size_t>(num_templates), 0.0);
  for (int id : template_ids) {
    if (id < 0 || id >= num_templates) {
      return Status::OutOfRange(
          StrFormat("template id %d outside [0, %d)", id, num_templates));
    }
    h[static_cast<size_t>(id)] += 1.0;
  }
  return h;
}

namespace {

// Shared (ids, offsets) validation of the batched builders.
Status ValidateHistogramLayout(const std::vector<int>& template_ids,
                               const std::vector<size_t>& offsets,
                               int num_templates) {
  if (num_templates < 1) {
    return Status::InvalidArgument("histogram needs >= 1 bin");
  }
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != template_ids.size()) {
    return Status::InvalidArgument("histogram offsets do not cover the ids");
  }
  for (size_t w = 0; w + 1 < offsets.size(); ++w) {
    if (offsets[w] > offsets[w + 1]) {
      return Status::InvalidArgument("histogram offsets must be monotone");
    }
  }
  return Status::OK();
}

}  // namespace

Result<ml::Matrix> BuildHistogramMatrix(const std::vector<int>& template_ids,
                                        const std::vector<size_t>& offsets,
                                        int num_templates) {
  WMP_RETURN_IF_ERROR(
      ValidateHistogramLayout(template_ids, offsets, num_templates));
  const size_t num_workloads = offsets.size() - 1;
  ml::Matrix h(num_workloads, static_cast<size_t>(num_templates));
  constexpr int kNoBadId = std::numeric_limits<int>::min();
  std::atomic<int> bad_id{kNoBadId};
  util::ParallelFor(num_workloads, 16, [&](size_t begin, size_t end) {
    for (size_t w = begin; w < end; ++w) {
      double* row = h.RowPtr(w);
      for (size_t q = offsets[w]; q < offsets[w + 1]; ++q) {
        const int id = template_ids[q];
        if (id < 0 || id >= num_templates) {
          bad_id.store(id, std::memory_order_relaxed);
          return;
        }
        row[static_cast<size_t>(id)] += 1.0;
      }
    }
  });
  if (const int id = bad_id.load(std::memory_order_relaxed); id != kNoBadId) {
    return Status::OutOfRange(
        StrFormat("template id %d outside [0, %d)", id, num_templates));
  }
  return h;
}

Status BuildHistogramRows(const std::vector<int>& template_ids,
                          const std::vector<size_t>& offsets,
                          int num_templates,
                          const std::vector<size_t>& row_map,
                          ml::Matrix* out) {
  WMP_RETURN_IF_ERROR(
      ValidateHistogramLayout(template_ids, offsets, num_templates));
  if (offsets.size() - 1 != row_map.size()) {
    return Status::InvalidArgument("row_map size != number of workloads");
  }
  if (out == nullptr || out->cols() != static_cast<size_t>(num_templates)) {
    return Status::InvalidArgument("output matrix has wrong width");
  }
  // Epoch-stamped duplicate check: the stamp array grows once to the
  // largest matrix seen and a bumped epoch invalidates every entry, so the
  // serving layer's per-flush calls do no per-call clearing or allocation
  // after warm-up.
  thread_local std::vector<uint32_t> seen_stamp;
  thread_local uint32_t seen_epoch = 0;
  if (seen_stamp.size() < out->rows()) seen_stamp.resize(out->rows(), 0);
  if (++seen_epoch == 0) {  // epoch wrapped: stamps are ambiguous, reset
    std::fill(seen_stamp.begin(), seen_stamp.end(), 0);
    seen_epoch = 1;
  }
  for (size_t r : row_map) {
    if (r >= out->rows()) {
      return Status::OutOfRange("row_map entry outside the output matrix");
    }
    // Rows are filled concurrently, so two workloads may not share one.
    if (seen_stamp[r] == seen_epoch) {
      return Status::InvalidArgument("row_map entries must be distinct");
    }
    seen_stamp[r] = seen_epoch;
  }
  constexpr int kNoBadId = std::numeric_limits<int>::min();
  std::atomic<int> bad_id{kNoBadId};
  util::ParallelFor(row_map.size(), 16, [&](size_t begin, size_t end) {
    for (size_t w = begin; w < end; ++w) {
      double* row = out->RowPtr(row_map[w]);
      std::fill(row, row + out->cols(), 0.0);
      for (size_t q = offsets[w]; q < offsets[w + 1]; ++q) {
        const int id = template_ids[q];
        if (id < 0 || id >= num_templates) {
          bad_id.store(id, std::memory_order_relaxed);
          return;
        }
        row[static_cast<size_t>(id)] += 1.0;
      }
    }
  });
  if (const int id = bad_id.load(std::memory_order_relaxed); id != kNoBadId) {
    return Status::OutOfRange(
        StrFormat("template id %d outside [0, %d)", id, num_templates));
  }
  return Status::OK();
}

double HistogramMass(const std::vector<double>& histogram) {
  double mass = 0.0;
  for (double c : histogram) mass += c;
  return mass;
}

}  // namespace wmp::core
