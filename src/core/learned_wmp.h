#ifndef WMP_CORE_LEARNED_WMP_H_
#define WMP_CORE_LEARNED_WMP_H_

/// \file learned_wmp.h
/// The LearnedWMP model (paper §III): query templates + workload histograms
/// + a distribution regressor, trained end-to-end from a query log and
/// predicting the working-memory demand of unseen workloads.
///
/// Training implements TR1-TR6; PredictWorkload implements IN1-IN5
/// (Algorithm 3).

#include <memory>
#include <vector>

#include "core/template_learner.h"
#include "core/template_resolver.h"
#include "core/workload.h"
#include "ml/regressor.h"

namespace wmp::ml {
class CompiledEnsemble;
struct CompileOptions;
}  // namespace wmp::ml

namespace wmp::core {

/// Configuration of a LearnedWMP model.
struct LearnedWmpOptions {
  TemplateLearnerOptions templates;
  int batch_size = 10;  ///< workload size `s`
  WorkloadLabel label = WorkloadLabel::kSum;
  ml::RegressorKind regressor = ml::RegressorKind::kGbt;
  /// Variable-length workload support (the paper's §I extension): the
  /// regressor is trained on *normalized* histograms (a distribution over
  /// templates) with per-query targets, and predictions rescale by the
  /// workload's size — so inference batches need not match the training
  /// `batch_size`. Only meaningful with the kSum label.
  bool variable_length = false;
  uint64_t seed = 42;
};

/// \brief Timing breakdown of LearnedWmpModel::Train.
struct LearnedWmpTrainStats {
  double template_ms = 0.0;   ///< phase 1 (TR3)
  double histogram_ms = 0.0;  ///< phase 2 (TR4-TR5)
  double regressor_ms = 0.0;  ///< phase 3 (TR6) — Fig. 6's "training time"
  /// Phase 3 internals for tree families: design binning / tree growth /
  /// per-round updates (zeros elsewhere). Attributes training regressions
  /// from the CLI (wmpctl train) and the training benchmark.
  ml::FitTiming regressor_timing;
  size_t num_workloads = 0;
};

/// \brief Trained workload-memory predictor.
class LearnedWmpModel {
 public:
  LearnedWmpModel() = default;

  /// Trains on the selected records (the Q_train partition). With a
  /// `bin_cache`, tree-family regressors reuse its binned design matrix —
  /// the experiment harness trains DT/RF/GBT candidates on the identical
  /// histogram matrix, so the cache bins it once instead of once per family.
  static Result<LearnedWmpModel> Train(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<uint32_t>& train_indices,
      const workloads::WorkloadGenerator& generator,
      const LearnedWmpOptions& options,
      ml::BinnedDatasetCache* bin_cache = nullptr);

  /// Generator-free overload for training from an ingested query log
  /// (tools/wmpctl): valid for the plan-feature template methods only —
  /// rule-based needs expert rules and text-mining needs the catalog,
  /// both of which come from a generator.
  static Result<LearnedWmpModel> Train(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<uint32_t>& train_indices,
      const LearnedWmpOptions& options,
      ml::BinnedDatasetCache* bin_cache = nullptr);

  /// Predicts the collective memory demand (MB) of one workload:
  /// IN1-IN4 build the histogram, IN5 applies the regressor.
  Result<double> PredictWorkload(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<uint32_t>& batch) const;

  /// Predicts many workloads in one batched pass — the production-serving
  /// hot path. The whole eval set is featurized, template-assigned
  /// (TemplateModel::AssignBatch), histogrammed (BuildHistogramMatrix), and
  /// regressed (Regressor::Predict) as contiguous matrices; row blocks run
  /// on the shared worker pool. Results agree with a PredictWorkload loop
  /// to within 1e-9 per workload (asserted in tests).
  Result<std::vector<double>> PredictWorkloads(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<WorkloadBatch>& batches) const;

  /// Predicts directly from a precomputed histogram (length k).
  Result<double> PredictFromHistogram(const std::vector<double>& histogram) const;

  /// Batched IN5: predicts every row of a precomputed count-histogram
  /// matrix (one workload per row, k columns). This is PredictWorkloads
  /// with the histogram-building front half factored out, so a serving
  /// layer that sources histograms from a cache reaches the regressor
  /// through the exact same arithmetic — cached rows score
  /// bitwise-identically to freshly-binned ones. Takes the matrix by value
  /// because variable-length mode normalizes rows in place.
  Result<std::vector<double>> PredictFromHistogramMatrix(ml::Matrix h) const;

  /// Builds the histogram of a workload (IN1-IN4; BinWorkload in Alg. 2).
  Result<std::vector<double>> BinWorkload(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<uint32_t>& batch) const;

  /// Batched IN1-IN4: builds every workload's histogram in one pass and
  /// returns them as a `batches.size() x num_templates` matrix (one row per
  /// workload, in order). Both training (TR4-TR5) and PredictWorkloads are
  /// built on top of this. With a `resolver`, member queries whose
  /// fingerprints it knows contribute their memoized template ids and only
  /// the rest are featurized/assigned (see AssignTemplateIds).
  Result<ml::Matrix> BinWorkloads(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<WorkloadBatch>& batches,
      TemplateIdResolver* resolver = nullptr) const;

  /// Cache-miss variant of BinWorkloads: bins only the workloads
  /// `batches[r]` for each `r` in `rows` (distinct, ascending or not),
  /// scattering each histogram into row `r` of `*out` and leaving every
  /// other row untouched. The serving layer's histogram cache fills hit
  /// rows directly and routes just the miss rows through here, skipping
  /// featurize/assign for everything cached — no per-workload copies of
  /// the untouched batches. `*out` must be `batches.size()` rows by
  /// num_templates columns. An optional `resolver` adds the second cache
  /// level: known member queries skip featurize/assign individually.
  Status BinWorkloadsInto(const std::vector<workloads::QueryRecord>& records,
                          const std::vector<WorkloadBatch>& batches,
                          const std::vector<size_t>& rows, ml::Matrix* out,
                          TemplateIdResolver* resolver = nullptr) const;

  /// IN3 with a per-query memo — the resolve-hits / featurize-misses /
  /// backfill pipeline. Queries whose content fingerprints the resolver
  /// knows take their template ids from it; only the miss subset goes
  /// through TemplateModel::AssignBatch (featurize + scale + assign), and
  /// the freshly computed (fingerprint, id) pairs are taught back. With a
  /// null resolver this is exactly AssignBatch. Returns one id per entry
  /// of `indices`, in order; memoized ids are bitwise the ids AssignBatch
  /// would produce (asserted in tests), so the downstream histogram — and
  /// prediction — is unchanged by the memo.
  Result<std::vector<int>> AssignTemplateIds(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<uint32_t>& indices,
      TemplateIdResolver* resolver) const;

  const TemplateModel& templates() const { return templates_; }
  /// Mutable access for serving/bench toggles (set_pruned_assign); not
  /// safe while another thread predicts through this model.
  TemplateModel* mutable_templates() { return &templates_; }
  const ml::Regressor& regressor() const { return *regressor_; }
  const LearnedWmpTrainStats& train_stats() const { return train_stats_; }
  const LearnedWmpOptions& options() const { return options_; }

  /// \name Bin-space compiled inference (ml/compiled_tree.h).
  ///
  /// Tree-family regressors are flattened into a compiled ensemble at
  /// train/load time, and IN5 (PredictFromHistogram / the batched matrix
  /// form) scores through it — bitwise-identical predictions, several
  /// times faster per row. Non-tree regressors (Ridge, MLP) leave
  /// `compiled()` null and serve through the reference path unchanged.
  /// @{
  /// Compiled form of the regressor, or null when the family has none.
  const ml::CompiledEnsemble* compiled() const { return compiled_.get(); }
  /// Routing toggle (default on). Turning it off forces the reference
  /// regressor path — the equivalence baseline the tests compare against.
  void set_compiled_inference(bool on) { use_compiled_ = on; }
  bool compiled_inference() const { return use_compiled_; }
  /// Rebuilds the compiled form with explicit options — benches and tests
  /// pin a traversal kernel / LUT depth this way; serving keeps the
  /// Train/Deserialize default (kAuto: WMP_TRAVERSE_KERNEL env, else the
  /// fastest supported kernel). Fails for non-tree families and for
  /// kernels this CPU can't run; `compiled()` is unchanged on failure.
  /// Not safe while another thread predicts through this model — recompile
  /// before publishing, as the registry/hot-swap path does naturally.
  Status RecompileInference(const ml::CompileOptions& options);
  /// @}

  /// Deployed model footprint: regressor + template model bytes.
  Result<size_t> SerializedSize() const;
  /// Regressor-only bytes (the quantity Fig. 8 compares across model
  /// families).
  Result<size_t> RegressorBytes() const;

  /// \name Persistence — the paper's deployment story ("pre-train ... and
  /// ship the model into the DBMS product"). Round-trips templates,
  /// regressor, and options. Restricted to serializable template methods
  /// (see TemplateModel::Serialize).
  /// @{
  Status Serialize(BinaryWriter* writer) const;
  static Result<LearnedWmpModel> Deserialize(BinaryReader* reader);
  Status SaveToFile(const std::string& path) const;
  static Result<LearnedWmpModel> LoadFromFile(const std::string& path);
  /// @}

 private:
  /// Rebuilds `compiled_` from the current regressor (best-effort: null
  /// for non-tree families). Called after Train and Deserialize.
  void CompileInference();

  LearnedWmpOptions options_;
  TemplateModel templates_;
  std::unique_ptr<ml::Regressor> regressor_;
  /// shared_ptr so model copies made by the serving layer's hot-swap path
  /// share one immutable compiled form.
  std::shared_ptr<const ml::CompiledEnsemble> compiled_;
  bool use_compiled_ = true;
  LearnedWmpTrainStats train_stats_;
};

}  // namespace wmp::core

#endif  // WMP_CORE_LEARNED_WMP_H_
