#include "core/single_wmp.h"

#include "core/featurizer.h"
#include "ml/compiled_tree.h"
#include "ml/mlp.h"
#include "util/timer.h"

namespace wmp::core {

namespace {

// Per-query regression maps raw plan features of single queries and is
// trained on ~10x more examples than the distribution regressor, so the
// paper's randomized search lands on a higher-capacity net for it.
std::unique_ptr<ml::Regressor> MakeSingleRegressor(ml::RegressorKind kind,
                                                   uint64_t seed) {
  if (kind == ml::RegressorKind::kMlp) {
    ml::MlpOptions opt;
    opt.hidden_layers = {128, 64, 48, 32};
    opt.seed = seed;
    return std::make_unique<ml::MlpRegressor>(opt);
  }
  return ml::CreateRegressor(kind, seed);
}

}  // namespace

Result<SingleWmpModel> SingleWmpModel::Train(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& train_indices,
    const SingleWmpOptions& options, ml::BinnedDatasetCache* bin_cache) {
  if (train_indices.empty()) {
    return Status::InvalidArgument("SingleWmpModel::Train with no queries");
  }
  SingleWmpModel model;
  model.options_ = options;
  ml::Matrix x = PlanFeatureMatrix(records, train_indices);
  std::vector<double> y = ActualMemoryVector(records, train_indices);
  WMP_RETURN_IF_ERROR(model.scaler_.Fit(x));
  WMP_ASSIGN_OR_RETURN(ml::Matrix scaled, model.scaler_.Transform(x));

  Stopwatch sw;
  model.regressor_ = MakeSingleRegressor(options.regressor, options.seed);
  WMP_RETURN_IF_ERROR(
      model.regressor_->FitWithSharedBins(scaled, y, bin_cache));
  model.train_ms_ = sw.ElapsedMillis();
  // Best-effort bin-space compile (tree families only; others keep the
  // reference path). Bitwise-identical predictions, so callers never see
  // the difference.
  auto compiled = ml::CompiledEnsemble::CompileRegressor(*model.regressor_);
  if (compiled.ok()) {
    model.compiled_ = std::make_shared<const ml::CompiledEnsemble>(
        std::move(compiled).value());
  }
  return model;
}

Result<double> SingleWmpModel::PredictQuery(
    const workloads::QueryRecord& record) const {
  if (regressor_ == nullptr) {
    return Status::FailedPrecondition("SingleWmpModel not trained");
  }
  std::vector<double> row = record.plan_features;
  WMP_RETURN_IF_ERROR(scaler_.TransformRow(&row));
  if (use_compiled_ && compiled_ != nullptr) {
    return compiled_->PredictOne(row);
  }
  return regressor_->PredictOne(row);
}

Result<double> SingleWmpModel::PredictWorkload(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& batch) const {
  double total = 0.0;
  for (uint32_t i : batch) {
    WMP_ASSIGN_OR_RETURN(double m, PredictQuery(records[i]));
    total += m;
  }
  return total;
}

Result<std::vector<double>> SingleWmpModel::PredictWorkloads(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<WorkloadBatch>& batches) const {
  std::vector<double> out(batches.size());
  for (size_t b = 0; b < batches.size(); ++b) {
    WMP_ASSIGN_OR_RETURN(out[b],
                         PredictWorkload(records, batches[b].query_indices));
  }
  return out;
}

Result<size_t> SingleWmpModel::RegressorBytes() const {
  if (regressor_ == nullptr) {
    return Status::FailedPrecondition("SingleWmpModel not trained");
  }
  return regressor_->SerializedSize();
}

double DbmsWorkloadEstimate(const std::vector<workloads::QueryRecord>& records,
                            const std::vector<uint32_t>& batch) {
  double total = 0.0;
  for (uint32_t i : batch) total += records[i].dbms_estimate_mb;
  return total;
}

std::vector<double> DbmsWorkloadEstimates(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<WorkloadBatch>& batches) {
  std::vector<double> out(batches.size());
  for (size_t b = 0; b < batches.size(); ++b) {
    out[b] = DbmsWorkloadEstimate(records, batches[b].query_indices);
  }
  return out;
}

}  // namespace wmp::core
