#include "core/learned_wmp.h"

#include "core/histogram.h"
#include "ml/compiled_tree.h"
#include "ml/dtree.h"
#include "util/parallel.h"
#include "ml/gbt.h"
#include "ml/mlp.h"
#include "ml/random_forest.h"
#include "util/timer.h"

namespace wmp::core {

namespace {

// Builds the regressor for a LearnedWMP model with hyperparameters tuned
// for distribution regression: the model sees |Q_train| / s workloads —
// an order of magnitude fewer examples than SingleWMP — so tree learners
// get shallower, more regularized settings, and the DNN uses the paper's
// tuned architecture (48-39-27-16-7-5, §III-B3), which the paper's
// randomized search selected for this model.
std::unique_ptr<ml::Regressor> MakeLearnedRegressor(ml::RegressorKind kind,
                                                    uint64_t seed) {
  switch (kind) {
    case ml::RegressorKind::kMlp: {
      ml::MlpOptions opt;  // defaults are the paper's architecture
      opt.seed = seed;
      return std::make_unique<ml::MlpRegressor>(opt);
    }
    case ml::RegressorKind::kGbt: {
      ml::GbtOptions opt;
      opt.num_rounds = 150;
      opt.learning_rate = 0.06;
      opt.max_depth = 4;
      opt.min_child_weight = 3;
      opt.colsample = 0.8;
      opt.subsample = 0.9;
      opt.seed = seed;
      return std::make_unique<ml::GbtRegressor>(opt);
    }
    case ml::RegressorKind::kDecisionTree: {
      ml::DecisionTreeOptions opt;
      opt.tree.max_depth = 8;
      opt.tree.min_samples_leaf = 4;
      opt.seed = seed;
      return std::make_unique<ml::DecisionTreeRegressor>(opt);
    }
    case ml::RegressorKind::kRandomForest: {
      ml::RandomForestOptions opt;
      opt.num_trees = 40;
      opt.tree.max_depth = 10;
      opt.tree.min_samples_leaf = 3;
      opt.seed = seed;
      return std::make_unique<ml::RandomForestRegressor>(opt);
    }
    default:
      return ml::CreateRegressor(kind, seed);
  }
}

// Stand-in generator for the generator-free Train overload; the plan-based
// template methods never consult it.
class NullWorkloadGenerator : public workloads::WorkloadGenerator {
 public:
  const std::string& name() const override {
    static const std::string kName = "ingested-log";
    return kName;
  }
  const catalog::Catalog& catalog() const override { return catalog_; }
  int num_families() const override { return 0; }
  Result<sql::Query> GenerateQuery(int, Rng*) const override {
    return Status::FailedPrecondition("ingested logs cannot generate queries");
  }
  std::vector<text::TemplateRule> ExpertRules() const override { return {}; }

 private:
  catalog::Catalog catalog_;
};

}  // namespace

Result<LearnedWmpModel> LearnedWmpModel::Train(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& train_indices,
    const LearnedWmpOptions& options, ml::BinnedDatasetCache* bin_cache) {
  switch (options.templates.method) {
    case TemplateMethod::kPlanKMeans:
    case TemplateMethod::kPlanDbscan:
      break;
    default:
      return Status::InvalidArgument(
          "generator-free training supports plan-feature templates only");
  }
  static const NullWorkloadGenerator kNullGenerator;
  return Train(records, train_indices, kNullGenerator, options, bin_cache);
}

Result<LearnedWmpModel> LearnedWmpModel::Train(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& train_indices,
    const workloads::WorkloadGenerator& generator,
    const LearnedWmpOptions& options, ml::BinnedDatasetCache* bin_cache) {
  if (train_indices.size() < static_cast<size_t>(options.batch_size)) {
    return Status::InvalidArgument(
        "need at least one full workload of training queries");
  }
  LearnedWmpModel model;
  model.options_ = options;

  // Phase 1 (TR1-TR3): learn query templates.
  Stopwatch sw;
  TemplateLearnerOptions topt = options.templates;
  topt.seed = options.seed;
  WMP_ASSIGN_OR_RETURN(
      model.templates_,
      TemplateModel::Learn(records, train_indices, generator, topt));
  model.train_stats_.template_ms = sw.ElapsedMillis();

  // Phase 2 (TR4-TR5): batch into workloads and build histograms.
  sw.Reset();
  WorkloadSetOptions wopt;
  wopt.batch_size = options.batch_size;
  wopt.label = options.label;
  wopt.seed = options.seed;
  const std::vector<WorkloadBatch> batches =
      BuildWorkloads(records, train_indices, wopt);
  if (batches.empty()) {
    return Status::InvalidArgument("no complete training workload");
  }
  if (options.variable_length && options.label != WorkloadLabel::kSum) {
    return Status::InvalidArgument(
        "variable-length workloads require the sum label");
  }
  WMP_ASSIGN_OR_RETURN(ml::Matrix h, model.BinWorkloads(records, batches));
  std::vector<double> y(batches.size());
  const double s = static_cast<double>(options.batch_size);
  if (options.variable_length) {
    for (double& c : h.data()) c /= s;  // distribution over templates
  }
  for (size_t b = 0; b < batches.size(); ++b) {
    y[b] = options.variable_length ? batches[b].label_mb / s
                                   : batches[b].label_mb;
  }
  model.train_stats_.histogram_ms = sw.ElapsedMillis();
  model.train_stats_.num_workloads = batches.size();

  // Phase 3 (TR6): fit the distribution regressor.
  sw.Reset();
  model.regressor_ = MakeLearnedRegressor(options.regressor, options.seed);
  WMP_RETURN_IF_ERROR(model.regressor_->FitWithSharedBins(h, y, bin_cache));
  model.train_stats_.regressor_ms = sw.ElapsedMillis();
  model.train_stats_.regressor_timing = model.regressor_->fit_timing();
  model.CompileInference();
  return model;
}

void LearnedWmpModel::CompileInference() {
  compiled_.reset();
  if (regressor_ == nullptr) return;
  // Best-effort: tree families compile, everything else keeps serving
  // through the reference Predict path.
  auto compiled = ml::CompiledEnsemble::CompileRegressor(*regressor_);
  if (compiled.ok()) {
    compiled_ = std::make_shared<const ml::CompiledEnsemble>(
        std::move(compiled).value());
  }
}

Status LearnedWmpModel::RecompileInference(const ml::CompileOptions& options) {
  if (regressor_ == nullptr) {
    return Status::FailedPrecondition("model has no regressor");
  }
  if (options.kernel != ml::TraverseKernel::kAuto &&
      !ml::TraverseKernelSupported(options.kernel)) {
    return Status::FailedPrecondition(
        "traversal kernel unsupported on this cpu");
  }
  WMP_ASSIGN_OR_RETURN(
      ml::CompiledEnsemble compiled,
      ml::CompiledEnsemble::CompileRegressor(*regressor_, options));
  compiled_ =
      std::make_shared<const ml::CompiledEnsemble>(std::move(compiled));
  return Status::OK();
}

Result<std::vector<double>> LearnedWmpModel::BinWorkload(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& batch) const {
  std::vector<int> ids(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    WMP_ASSIGN_OR_RETURN(ids[i], templates_.Assign(records[batch[i]]));
  }
  return BuildHistogram(ids, templates_.num_templates());
}

Result<double> LearnedWmpModel::PredictWorkload(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& batch) const {
  WMP_ASSIGN_OR_RETURN(std::vector<double> hist, BinWorkload(records, batch));
  return PredictFromHistogram(hist);
}

Result<ml::Matrix> LearnedWmpModel::BinWorkloads(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<WorkloadBatch>& batches,
    TemplateIdResolver* resolver) const {
  // Flatten every workload's member queries into one index vector so the
  // whole eval set is featurized and template-assigned in a single batched
  // pass, then scatter the assignments back into per-workload histograms.
  std::vector<size_t> offsets(batches.size() + 1, 0);
  for (size_t b = 0; b < batches.size(); ++b) {
    offsets[b + 1] = offsets[b] + batches[b].query_indices.size();
  }
  std::vector<uint32_t> flat;
  flat.reserve(offsets.back());
  for (const WorkloadBatch& b : batches) {
    flat.insert(flat.end(), b.query_indices.begin(), b.query_indices.end());
  }
  WMP_ASSIGN_OR_RETURN(std::vector<int> ids,
                       AssignTemplateIds(records, flat, resolver));
  return BuildHistogramMatrix(ids, offsets, templates_.num_templates());
}

Status LearnedWmpModel::BinWorkloadsInto(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<WorkloadBatch>& batches,
    const std::vector<size_t>& rows, ml::Matrix* out,
    TemplateIdResolver* resolver) const {
  if (rows.empty()) return Status::OK();
  std::vector<size_t> offsets(rows.size() + 1, 0);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= batches.size()) {
      return Status::OutOfRange("row index outside the batch set");
    }
    offsets[i + 1] = offsets[i] + batches[rows[i]].query_indices.size();
  }
  std::vector<uint32_t> flat;
  flat.reserve(offsets.back());
  for (size_t r : rows) {
    const auto& q = batches[r].query_indices;
    flat.insert(flat.end(), q.begin(), q.end());
  }
  WMP_ASSIGN_OR_RETURN(std::vector<int> ids,
                       AssignTemplateIds(records, flat, resolver));
  return BuildHistogramRows(ids, offsets, templates_.num_templates(), rows,
                            out);
}

Result<std::vector<int>> LearnedWmpModel::AssignTemplateIds(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& indices,
    TemplateIdResolver* resolver) const {
  if (resolver == nullptr || indices.empty()) {
    return templates_.AssignBatch(records, indices);
  }
  const size_t n = indices.size();
  // Resolve: per-query content fingerprints (memoized at ingest; records
  // from other sources hash here), then one batched memo probe.
  std::vector<uint64_t> keys(n);
  util::ParallelFor(n, 512, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      keys[i] = QueryFingerprint(records[indices[i]]);
    }
  });
  std::vector<int> ids(n);
  std::vector<uint8_t> hit(n, 0);
  const size_t hits = resolver->Resolve(keys.data(), n, ids.data(), hit.data());
  if (hits == n) return ids;
  // Featurize misses: only the unknown subset pays featurize + scale +
  // assign. Duplicate misses within one flush are assigned redundantly
  // rather than deduplicated — the memo absorbs them from the next call on,
  // and dedup bookkeeping would cost more than the rare double assign.
  std::vector<uint32_t> miss;
  std::vector<size_t> miss_pos;
  miss.reserve(n - hits);
  miss_pos.reserve(n - hits);
  for (size_t i = 0; i < n; ++i) {
    if (!hit[i]) {
      miss.push_back(indices[i]);
      miss_pos.push_back(i);
    }
  }
  WMP_ASSIGN_OR_RETURN(std::vector<int> miss_ids,
                       templates_.AssignBatch(records, miss));
  // Backfill the gaps and teach the memo the fresh assignments.
  std::vector<uint64_t> miss_keys(miss.size());
  for (size_t j = 0; j < miss.size(); ++j) {
    ids[miss_pos[j]] = miss_ids[j];
    miss_keys[j] = keys[miss_pos[j]];
  }
  resolver->Learn(miss_keys.data(), miss_ids.data(), miss_ids.size());
  return ids;
}

Result<std::vector<double>> LearnedWmpModel::PredictWorkloads(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<WorkloadBatch>& batches) const {
  if (regressor_ == nullptr) {
    return Status::FailedPrecondition("LearnedWmpModel not trained");
  }
  if (batches.empty()) return std::vector<double>{};
  WMP_ASSIGN_OR_RETURN(ml::Matrix h, BinWorkloads(records, batches));
  return PredictFromHistogramMatrix(std::move(h));
}

Result<std::vector<double>> LearnedWmpModel::PredictFromHistogramMatrix(
    ml::Matrix h) const {
  if (regressor_ == nullptr) {
    return Status::FailedPrecondition("LearnedWmpModel not trained");
  }
  if (h.cols() != static_cast<size_t>(templates_.num_templates())) {
    return Status::InvalidArgument("histogram width != num templates");
  }
  if (h.rows() == 0) return std::vector<double>{};
  // Bin-space fast path: the compiled ensemble reproduces the regressor's
  // predictions bit for bit, so routing is invisible to callers.
  const bool compiled = use_compiled_ && compiled_ != nullptr;
  if (!options_.variable_length) {
    return compiled ? compiled_->Predict(h) : regressor_->Predict(h);
  }
  // Variable-length mode: normalize each histogram row to a distribution,
  // predict per-query demand for all rows at once, rescale by each
  // workload's size — the batched mirror of PredictFromHistogram.
  std::vector<double> mass(h.rows());
  for (size_t b = 0; b < h.rows(); ++b) {
    const double* row = h.RowPtr(b);
    double m = 0.0;
    for (size_t c = 0; c < h.cols(); ++c) m += row[c];
    if (m <= 0.0) {
      return Status::InvalidArgument("empty workload histogram");
    }
    mass[b] = m;
    double* mut = h.RowPtr(b);
    for (size_t c = 0; c < h.cols(); ++c) mut[c] /= m;
  }
  WMP_ASSIGN_OR_RETURN(
      std::vector<double> per_query,
      compiled ? compiled_->Predict(h) : regressor_->Predict(h));
  for (size_t b = 0; b < per_query.size(); ++b) per_query[b] *= mass[b];
  return per_query;
}

Result<double> LearnedWmpModel::PredictFromHistogram(
    const std::vector<double>& histogram) const {
  if (regressor_ == nullptr) {
    return Status::FailedPrecondition("LearnedWmpModel not trained");
  }
  if (histogram.size() != static_cast<size_t>(templates_.num_templates())) {
    return Status::InvalidArgument("histogram length != num templates");
  }
  const bool compiled = use_compiled_ && compiled_ != nullptr;
  if (!options_.variable_length) {
    return compiled ? compiled_->PredictOne(histogram)
                    : regressor_->PredictOne(histogram);
  }
  // Variable-length mode: normalize to a distribution, predict per-query
  // demand, rescale by the workload's actual size.
  const double mass = HistogramMass(histogram);
  if (mass <= 0.0) {
    return Status::InvalidArgument("empty workload histogram");
  }
  std::vector<double> normalized = histogram;
  for (double& c : normalized) c /= mass;
  WMP_ASSIGN_OR_RETURN(double per_query,
                       compiled ? compiled_->PredictOne(normalized)
                                : regressor_->PredictOne(normalized));
  return per_query * mass;
}

Result<size_t> LearnedWmpModel::SerializedSize() const {
  WMP_ASSIGN_OR_RETURN(size_t reg, RegressorBytes());
  return reg + templates_.SerializedBytes();
}

Result<size_t> LearnedWmpModel::RegressorBytes() const {
  if (regressor_ == nullptr) {
    return Status::FailedPrecondition("LearnedWmpModel not trained");
  }
  return regressor_->SerializedSize();
}

namespace {
constexpr uint32_t kLearnedWmpTag = 0x574D504C;  // "WMPL"
constexpr uint32_t kLearnedWmpVersion = 1;
}  // namespace

Status LearnedWmpModel::Serialize(BinaryWriter* writer) const {
  if (regressor_ == nullptr) {
    return Status::FailedPrecondition("LearnedWmpModel not trained");
  }
  writer->WriteU32(kLearnedWmpTag);
  writer->WriteU32(kLearnedWmpVersion);
  writer->WriteI64(options_.batch_size);
  writer->WriteU8(static_cast<uint8_t>(options_.label));
  writer->WriteU8(options_.variable_length ? 1 : 0);
  WMP_RETURN_IF_ERROR(templates_.Serialize(writer));
  return regressor_->Serialize(writer);
}

Result<LearnedWmpModel> LearnedWmpModel::Deserialize(BinaryReader* reader) {
  WMP_ASSIGN_OR_RETURN(uint32_t tag, reader->ReadU32());
  if (tag != kLearnedWmpTag) {
    return Status::InvalidArgument("bad LearnedWMP model magic tag");
  }
  WMP_ASSIGN_OR_RETURN(uint32_t version, reader->ReadU32());
  if (version != kLearnedWmpVersion) {
    return Status::InvalidArgument("unsupported LearnedWMP model version");
  }
  LearnedWmpModel model;
  WMP_ASSIGN_OR_RETURN(int64_t batch, reader->ReadI64());
  model.options_.batch_size = static_cast<int>(batch);
  WMP_ASSIGN_OR_RETURN(uint8_t label, reader->ReadU8());
  model.options_.label = static_cast<WorkloadLabel>(label);
  WMP_ASSIGN_OR_RETURN(uint8_t var_len, reader->ReadU8());
  model.options_.variable_length = var_len != 0;
  WMP_ASSIGN_OR_RETURN(model.templates_, TemplateModel::Deserialize(reader));
  model.options_.templates.method = model.templates_.method();
  model.options_.templates.num_templates = model.templates_.num_templates();
  WMP_ASSIGN_OR_RETURN(model.regressor_, ml::DeserializeRegressor(reader));
  model.CompileInference();
  return model;
}

Status LearnedWmpModel::SaveToFile(const std::string& path) const {
  BinaryWriter writer;
  WMP_RETURN_IF_ERROR(Serialize(&writer));
  return writer.WriteToFile(path);
}

Result<LearnedWmpModel> LearnedWmpModel::LoadFromFile(const std::string& path) {
  WMP_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  return Deserialize(&reader);
}

}  // namespace wmp::core
