#ifndef WMP_CORE_TEMPLATE_LEARNER_H_
#define WMP_CORE_TEMPLATE_LEARNER_H_

/// \file template_learner.h
/// Phase 1 of LearnedWMP: learning query templates (paper §III-B1,
/// Algorithm 1) — plus the four alternative template-learning methods the
/// paper ablates in Fig. 9 and the DBSCAN variant from §V.

#include <atomic>
#include <memory>
#include <vector>

#include "core/featurizer.h"
#include "ml/centroid_index.h"
#include "ml/dbscan.h"
#include "ml/kmeans.h"
#include "ml/scaler.h"
#include "text/bow.h"
#include "text/embeddings.h"
#include "text/rules.h"
#include "text/text_mining.h"
#include "util/io.h"
#include "workloads/generator.h"
#include "workloads/query_record.h"

namespace wmp::core {

/// How templates are learned / queries are assigned.
enum class TemplateMethod {
  kPlanKMeans,     ///< paper's method: plan features + k-means (Alg. 1)
  kPlanDbscan,     ///< §V ablation: plan features + DBSCAN
  kRuleBased,      ///< Fig. 9: expert rules, one per family
  kBagOfWords,     ///< Fig. 9: corpus BoW + k-means
  kTextMining,     ///< Fig. 9: schema-aware tokens + k-means
  kWordEmbedding,  ///< Fig. 9: PPMI/SVD embeddings + k-means
};

/// Display name ("query plan (ours)", "rule based", ...), matching Fig. 9's
/// x-axis labels.
const char* TemplateMethodName(TemplateMethod m);

/// All methods in Fig. 9 order (plan first), then the DBSCAN extra.
const std::vector<TemplateMethod>& AllTemplateMethods();

/// Configuration for TemplateModel::Learn.
struct TemplateLearnerOptions {
  TemplateMethod method = TemplateMethod::kPlanKMeans;
  /// Number of templates k (clustering methods only; rule-based derives it
  /// from the rule set).
  int num_templates = 40;
  /// log1p-compress the cardinality slots of plan features before
  /// clustering. Off by default: working memory scales with *absolute*
  /// cardinalities, so clustering on raw (standardized) magnitudes yields
  /// more memory-homogeneous templates; the log variant groups queries by
  /// plan "shape" instead and is kept for ablations.
  bool log_transform_cards = false;
  uint64_t seed = 42;
  ml::KMeansOptions kmeans;          ///< num_clusters overridden
  ml::DbscanOptions dbscan = {.eps = 1.0, .min_points = 10};
  text::BowOptions bow;
  text::EmbeddingOptions embedding;
};

/// \brief A learned set of query templates `T` with an assignment function.
///
/// Thread-compatible after Learn(); Assign is const.
class TemplateModel {
 public:
  TemplateModel() = default;

  /// Learns templates from the training records (GETTEMPLATES in Alg. 1).
  /// `generator` supplies the expert rules (rule-based method) and the
  /// catalog (text-mining vocabulary); it must outlive nothing — rules are
  /// copied.
  static Result<TemplateModel> Learn(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<uint32_t>& train_indices,
      const workloads::WorkloadGenerator& generator,
      const TemplateLearnerOptions& options);

  /// Template id of one query (findTemplate in Alg. 2) in
  /// `[0, num_templates())`.
  Result<int> Assign(const workloads::QueryRecord& record) const;

  /// Batch counterpart of Assign — the IN3 hot path over a whole eval set.
  ///
  /// Featurizes the selected records into one contiguous `ml::Matrix`,
  /// standardizes it in place, and assigns every row in a single pass; row
  /// blocks run on the shared worker pool (util/parallel.h). Returns one
  /// template id per entry of `indices`, in order, each agreeing exactly
  /// with what Assign() would return for that record. Thread-safe after
  /// Learn()/Deserialize(): const and lock-free.
  Result<std::vector<int>> AssignBatch(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<uint32_t>& indices) const;

  /// Number of learned templates (histogram length k).
  int num_templates() const { return num_templates_; }
  TemplateMethod method() const { return options_.method; }

  /// The featurizer the plan-feature methods assign through (null for the
  /// rule-based and text ablation methods, which featurize differently).
  const Featurizer* featurizer() const { return featurizer_.get(); }

  /// \name Exact pruned assignment (ml/centroid_index.h).
  ///
  /// Plan-feature AssignBatch routes through a CentroidIndex — partial
  /// distances + centroid-centroid bounds — producing ids bitwise equal to
  /// the NearestCentroids reference scan. Turning the toggle off forces
  /// the reference path (the equivalence baseline the tests compare
  /// against, and the pre-PR behaviour for benchmarks).
  /// @{
  void set_pruned_assign(bool on) { pruned_assign_ = on; }
  bool pruned_assign() const { return pruned_assign_; }

  /// Cumulative pruning counters across AssignBatch calls (zeros when the
  /// pruned path never ran). Copies of the model share one counter block.
  ml::CentroidIndex::AssignStats assign_stats() const;
  /// @}

  /// Serialized size in bytes (centroids + scaler); part of the deployed
  /// model footprint.
  size_t SerializedBytes() const;

  /// \name Persistence
  /// Serialization covers the deployable methods — plan-feature k-means /
  /// DBSCAN and rule-based. The text-based methods exist for the Fig. 9
  /// ablation only and return NotImplemented.
  /// @{
  Status Serialize(BinaryWriter* writer) const;
  static Result<TemplateModel> Deserialize(BinaryReader* reader);
  /// @}

 private:
  // Feature vector of a record under the configured method.
  Result<std::vector<double>> Featurize(
      const workloads::QueryRecord& record) const;

  // Featurizes the selected records into one matrix (one row per index).
  // Plan-feature methods fill rows in parallel; the text-based ablation
  // methods fall back to a serial Featurize loop.
  Result<ml::Matrix> FeaturizeBatch(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<uint32_t>& indices) const;

  // Builds featurizer_ + centroid_index_ once centroids and options are
  // final (end of Learn and Deserialize).
  void BuildAssignPath();

  // Centroid matrix the plan-feature methods assign against.
  const ml::Matrix& AssignCentroids() const {
    return options_.method == TemplateMethod::kPlanDbscan ? dbscan_centroids_
                                                          : kmeans_.centroids();
  }

  /// Relaxed atomic counter block, shared by copies of the model so the
  /// serving layer's snapshot-per-shard copies still aggregate.
  struct AssignCounters {
    std::atomic<uint64_t> rows{0};
    std::atomic<uint64_t> bound_skips{0};
    std::atomic<uint64_t> early_exits{0};
    std::atomic<uint64_t> full_distances{0};
  };

  TemplateLearnerOptions options_;
  int num_templates_ = 0;
  ml::StandardScaler scaler_;
  ml::KMeans kmeans_;
  ml::Matrix dbscan_centroids_;
  text::BowVectorizer bow_;
  text::SchemaAwareVectorizer schema_vectorizer_;
  text::WordEmbeddings embeddings_;
  text::RuleBasedClassifier rules_;
  /// Shared, immutable after BuildAssignPath (copies alias them).
  std::shared_ptr<const Featurizer> featurizer_;
  std::shared_ptr<const ml::CentroidIndex> centroid_index_;
  std::shared_ptr<AssignCounters> assign_counters_;
  bool pruned_assign_ = true;
};

/// \brief The paper's elbow tuning for `k` (§III-B1 cites the elbow
/// method): runs plan-feature k-means over each candidate in `ks` and picks
/// the inertia-curve elbow. Returns the chosen k.
Result<int> ChooseNumTemplates(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& train_indices, const std::vector<int>& ks,
    uint64_t seed = 42);

}  // namespace wmp::core

#endif  // WMP_CORE_TEMPLATE_LEARNER_H_
