#ifndef WMP_CORE_WORKLOAD_H_
#define WMP_CORE_WORKLOAD_H_

/// \file workload.h
/// Workload batching (paper step TR4): partitioning queries into fixed-size
/// workloads and computing each workload's collective memory label `y`.
///
/// The paper's prose defines `y` as the SUM of the member queries' peak
/// memory (the quantity the concurrently-executing batch demands), while
/// its eq. (1) writes `max`; we default to sum and expose max as an option
/// (see DESIGN.md "Paper inconsistency noted").

#include <cstdint>
#include <vector>

#include "util/random.h"
#include "workloads/query_record.h"

namespace wmp::core {

/// Aggregation of per-query memory into the workload label `y`.
enum class WorkloadLabel { kSum, kMax };

/// Batching knobs.
struct WorkloadSetOptions {
  int batch_size = 10;  ///< `s` in the paper; tuned in Fig. 11.
  WorkloadLabel label = WorkloadLabel::kSum;
  bool shuffle = true;  ///< TR4 partitions queries randomly.
  uint64_t seed = 42;
};

/// \brief One workload: the member query rows plus the label.
struct WorkloadBatch {
  std::vector<uint32_t> query_indices;
  double label_mb = 0.0;
};

/// \brief Partitions `indices` into batches of `batch_size` queries
/// (dropping a final incomplete remainder batch, matching the paper's
/// fixed-length-workload design) and labels each.
std::vector<WorkloadBatch> BuildWorkloads(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& indices, const WorkloadSetOptions& options);

/// Label of one batch under the chosen aggregation.
double ComputeWorkloadLabel(const std::vector<workloads::QueryRecord>& records,
                            const std::vector<uint32_t>& batch,
                            WorkloadLabel label);

/// \name Workload fingerprints — the histogram-cache key.
///
/// Steady-state workloads re-submit the same query sets (same SQL, same
/// plans), so their histograms are identical and rebuilding them repeats
/// the featurize + template-assign work for nothing. These fingerprints
/// give the serving layer a content-addressed key: a workload's fingerprint
/// depends only on the *multiset* of member-query contents (SQL text, plan
/// features, generator family — everything any template method reads), not
/// on member order or on the queries' positions in the log.
///
/// 64-bit keys collide with birthday probability (~2^-32 per pair at cache
/// scale), the standard content-addressed-cache tradeoff.
/// @{

/// Canonical 64-bit hash of one query's template-relevant content.
uint64_t QueryFingerprint(const workloads::QueryRecord& record);

/// Order-invariant combination of the member queries' fingerprints.
uint64_t WorkloadFingerprint(const std::vector<workloads::QueryRecord>& records,
                             const std::vector<uint32_t>& batch);
/// @}

}  // namespace wmp::core

#endif  // WMP_CORE_WORKLOAD_H_
