#include "core/experiment.h"

#include <cmath>

#include "ml/binned.h"
#include "ml/compiled_tree.h"
#include "ml/search.h"
#include "util/strings.h"
#include "util/timer.h"

namespace wmp::core {

int DefaultNumTemplates(workloads::Benchmark benchmark) {
  switch (benchmark) {
    case workloads::Benchmark::kTpcds:
      return 100;
    case workloads::Benchmark::kJob:
      return 40;
    case workloads::Benchmark::kTpcc:
      return 20;
  }
  return 40;
}

namespace {

ModelReport ScorePredictions(std::string name,
                             const std::vector<double>& labels,
                             std::vector<double> predictions) {
  ModelReport report;
  report.name = std::move(name);
  report.rmse = ml::Rmse(labels, predictions);
  report.mape = ml::Mape(labels, predictions);
  report.residuals = ml::SummarizeResiduals(ml::Residuals(labels, predictions));
  report.predictions = std::move(predictions);
  return report;
}

}  // namespace

Result<ExperimentData> PrepareExperiment(const ExperimentConfig& config) {
  ExperimentData data;
  data.config = config;
  if (data.config.num_templates <= 0) {
    data.config.num_templates = DefaultNumTemplates(config.benchmark);
  }

  workloads::DatasetOptions dopt;
  dopt.seed = config.seed;
  dopt.num_queries = static_cast<size_t>(
      std::llround(config.scale *
                   static_cast<double>(workloads::PaperQueryCount(config.benchmark))));
  WMP_ASSIGN_OR_RETURN(data.dataset,
                       workloads::BuildDataset(config.benchmark, dopt));

  ml::IndexSplit split = ml::TrainTestSplitIndices(
      data.dataset.records.size(), config.test_fraction, config.seed);
  data.train_indices = std::move(split.train);
  data.test_indices = std::move(split.test);

  WorkloadSetOptions wopt;
  wopt.batch_size = config.batch_size;
  wopt.label = config.label;
  wopt.seed = config.seed + 1;
  data.test_batches =
      BuildWorkloads(data.dataset.records, data.test_indices, wopt);
  data.test_labels.reserve(data.test_batches.size());
  for (const WorkloadBatch& b : data.test_batches) {
    data.test_labels.push_back(b.label_mb);
  }
  if (data.test_batches.empty()) {
    return Status::InvalidArgument("test split produced no full workload");
  }
  return data;
}

Result<ModelReport> EvaluateLearnedWmp(const ExperimentData& data,
                                       ml::RegressorKind kind,
                                       double* template_ms_out,
                                       ml::BinnedDatasetCache* bin_cache) {
  LearnedWmpOptions opt;
  opt.templates.method = data.config.template_method;
  opt.templates.num_templates = data.config.num_templates;
  opt.batch_size = data.config.batch_size;
  opt.label = data.config.label;
  opt.regressor = kind;
  opt.seed = data.config.seed;
  WMP_ASSIGN_OR_RETURN(
      LearnedWmpModel model,
      LearnedWmpModel::Train(data.dataset.records, data.train_indices,
                             *data.dataset.generator, opt, bin_cache));

  Stopwatch sw;
  WMP_ASSIGN_OR_RETURN(
      std::vector<double> predictions,
      model.PredictWorkloads(data.dataset.records, data.test_batches));
  const double infer_us = sw.ElapsedMicros();

  ModelReport report = ScorePredictions(
      StrFormat("LearnedWMP-%s", ml::RegressorKindName(kind)),
      data.test_labels, std::move(predictions));
  report.train_ms = model.train_stats().regressor_ms;
  report.fit_timing = model.train_stats().regressor_timing;
  report.infer_us_per_workload =
      infer_us / static_cast<double>(data.test_batches.size());
  WMP_ASSIGN_OR_RETURN(report.model_bytes, model.RegressorBytes());
  WMP_ASSIGN_OR_RETURN(report.pointer_model_bytes,
                       ml::PointerSerializedBytes(model.regressor()));
  if (template_ms_out != nullptr) {
    *template_ms_out = model.train_stats().template_ms;
  }
  return report;
}

Result<ModelReport> EvaluateSingleWmp(const ExperimentData& data,
                                      ml::RegressorKind kind,
                                      ml::BinnedDatasetCache* bin_cache) {
  SingleWmpOptions opt;
  opt.regressor = kind;
  opt.seed = data.config.seed;
  WMP_ASSIGN_OR_RETURN(SingleWmpModel model,
                       SingleWmpModel::Train(data.dataset.records,
                                             data.train_indices, opt,
                                             bin_cache));

  Stopwatch sw;
  WMP_ASSIGN_OR_RETURN(
      std::vector<double> predictions,
      model.PredictWorkloads(data.dataset.records, data.test_batches));
  const double infer_us = sw.ElapsedMicros();

  ModelReport report = ScorePredictions(
      StrFormat("SingleWMP-%s", ml::RegressorKindName(kind)),
      data.test_labels, std::move(predictions));
  report.train_ms = model.train_ms();
  report.fit_timing = model.fit_timing();
  report.infer_us_per_workload =
      infer_us / static_cast<double>(data.test_batches.size());
  WMP_ASSIGN_OR_RETURN(report.model_bytes, model.RegressorBytes());
  WMP_ASSIGN_OR_RETURN(report.pointer_model_bytes,
                       ml::PointerSerializedBytes(model.regressor()));
  return report;
}

ModelReport EvaluateDbmsBaseline(const ExperimentData& data) {
  std::vector<double> predictions =
      DbmsWorkloadEstimates(data.dataset.records, data.test_batches);
  return ScorePredictions("SingleWMP-DBMS", data.test_labels,
                          std::move(predictions));
}

Result<ExperimentResult> RunCoreExperiment(const ExperimentConfig& config) {
  WMP_ASSIGN_OR_RETURN(ExperimentData data, PrepareExperiment(config));
  return RunCoreExperiment(data);
}

Result<ExperimentResult> RunCoreExperiment(const ExperimentData& data) {
  ExperimentResult result;
  result.benchmark = data.dataset.benchmark_name;
  result.num_queries = data.dataset.records.size();
  result.num_train_queries = data.train_indices.size();
  result.num_test_workloads = data.test_batches.size();
  result.num_templates = data.config.num_templates;
  result.test_labels = data.test_labels;

  result.reports.push_back(EvaluateDbmsBaseline(data));
  // The DT/RF/GBT candidates inside each sweep train on an identical design
  // matrix (same seed, same featurization), so one shared cache per sweep
  // bins it once instead of once per tree family.
  ml::BinnedDatasetCache single_bins;
  for (ml::RegressorKind kind : ml::AllRegressorKinds()) {
    WMP_ASSIGN_OR_RETURN(ModelReport single,
                         EvaluateSingleWmp(data, kind, &single_bins));
    result.reports.push_back(std::move(single));
  }
  ml::BinnedDatasetCache learned_bins;
  bool first_learned = true;
  for (ml::RegressorKind kind : ml::AllRegressorKinds()) {
    // Phase-1 cost is shared across the Learned variants; report it once.
    double template_ms = 0.0;
    WMP_ASSIGN_OR_RETURN(
        ModelReport learned,
        EvaluateLearnedWmp(data, kind, first_learned ? &template_ms : nullptr,
                           &learned_bins));
    if (first_learned) {
      result.template_learning_ms = template_ms;
      first_learned = false;
    }
    result.reports.push_back(std::move(learned));
  }
  return result;
}

}  // namespace wmp::core
