#ifndef WMP_CORE_TEMPLATE_RESOLVER_H_
#define WMP_CORE_TEMPLATE_RESOLVER_H_

/// \file template_resolver.h
/// Per-query template-id memo interface for the binning path.
///
/// LearnedWMP's serving workloads repeat *individual* queries endlessly in
/// novel combinations (the paper's admission-controller deployment, §I).
/// The histogram cache only helps when a whole workload recurs; a per-query
/// memo makes a workload of all-known queries nearly free — its histogram
/// is built from cached template ids without featurize/assign.
///
/// This interface is what `LearnedWmpModel::AssignTemplateIds` consults to
/// split IN3 into a resolve-hits / featurize-misses / backfill pipeline.
/// The serving-side implementation is `engine::TemplateIdCache` (a sharded
/// LRU keyed by `QueryRecord::content_fingerprint`, versioned on model
/// identity); core only sees this abstract memo so the dependency points
/// engine -> core, never back.
///
/// Thread-safety contract: implementations must tolerate concurrent
/// Resolve/Learn calls — dispatcher threads of different services may share
/// one memo over the same model.

#include <cstddef>
#include <cstdint>

namespace wmp::core {

/// \brief Abstract fingerprint -> template-id memo.
class TemplateIdResolver {
 public:
  virtual ~TemplateIdResolver() = default;

  /// For each `i` in `[0, n)`: if `keys[i]` is known, writes the memoized
  /// template id into `ids[i]` and sets `hit[i] = 1`; otherwise sets
  /// `hit[i] = 0` and leaves `ids[i]` untouched. Returns the hit count.
  virtual size_t Resolve(const uint64_t* keys, size_t n, int* ids,
                         uint8_t* hit) = 0;

  /// Records `n` freshly computed (key, id) pairs so later Resolve calls
  /// can skip featurize/assign for them.
  virtual void Learn(const uint64_t* keys, const int* ids, size_t n) = 0;
};

}  // namespace wmp::core

#endif  // WMP_CORE_TEMPLATE_RESOLVER_H_
