#include "core/template_learner.h"

#include <atomic>
#include <cmath>
#include <limits>

#include "core/featurizer.h"
#include "util/parallel.h"

namespace wmp::core {

const char* TemplateMethodName(TemplateMethod m) {
  switch (m) {
    case TemplateMethod::kPlanKMeans:
      return "query plan (ours)";
    case TemplateMethod::kPlanDbscan:
      return "query plan + DBSCAN";
    case TemplateMethod::kRuleBased:
      return "rule based";
    case TemplateMethod::kBagOfWords:
      return "bag of words";
    case TemplateMethod::kTextMining:
      return "text mining";
    case TemplateMethod::kWordEmbedding:
      return "word embeddings";
  }
  return "?";
}

const std::vector<TemplateMethod>& AllTemplateMethods() {
  static const std::vector<TemplateMethod> kAll = {
      TemplateMethod::kPlanKMeans,    TemplateMethod::kRuleBased,
      TemplateMethod::kBagOfWords,    TemplateMethod::kTextMining,
      TemplateMethod::kWordEmbedding, TemplateMethod::kPlanDbscan,
  };
  return kAll;
}

Result<TemplateModel> TemplateModel::Learn(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& train_indices,
    const workloads::WorkloadGenerator& generator,
    const TemplateLearnerOptions& options) {
  if (train_indices.empty()) {
    return Status::InvalidArgument("TemplateModel::Learn with no queries");
  }
  if (options.num_templates < 1 &&
      options.method != TemplateMethod::kRuleBased &&
      options.method != TemplateMethod::kPlanDbscan) {
    return Status::InvalidArgument("num_templates must be >= 1");
  }
  TemplateModel model;
  model.options_ = options;

  // Rule-based needs no training beyond copying the expert rules.
  if (options.method == TemplateMethod::kRuleBased) {
    model.rules_ = text::RuleBasedClassifier(generator.ExpertRules());
    model.num_templates_ = model.rules_.num_templates();
    return model;
  }

  // Train the method-specific featurizer first (needed by Featurize).
  switch (options.method) {
    case TemplateMethod::kBagOfWords: {
      std::vector<std::string> corpus;
      corpus.reserve(train_indices.size());
      for (uint32_t i : train_indices) corpus.push_back(records[i].sql_text);
      WMP_RETURN_IF_ERROR(model.bow_.Fit(corpus, options.bow));
      break;
    }
    case TemplateMethod::kTextMining:
      WMP_RETURN_IF_ERROR(
          model.schema_vectorizer_.Fit(generator.catalog()));
      break;
    case TemplateMethod::kWordEmbedding: {
      std::vector<std::string> corpus;
      corpus.reserve(train_indices.size());
      for (uint32_t i : train_indices) corpus.push_back(records[i].sql_text);
      text::EmbeddingOptions emb = options.embedding;
      emb.seed = options.seed;
      WMP_RETURN_IF_ERROR(model.embeddings_.Fit(corpus, emb));
      break;
    }
    default:
      break;  // plan features need no featurizer training
  }

  // Assemble the feature matrix (Alg. 1 lines 4-8) in one batch pass, then
  // standardize it in place — training featurization shares the batched
  // pipeline with inference.
  WMP_ASSIGN_OR_RETURN(ml::Matrix scaled,
                       model.FeaturizeBatch(records, train_indices));
  WMP_RETURN_IF_ERROR(model.scaler_.Fit(scaled));
  WMP_RETURN_IF_ERROR(model.scaler_.TransformInPlace(&scaled));

  if (options.method == TemplateMethod::kPlanDbscan) {
    ml::Dbscan dbscan;
    WMP_RETURN_IF_ERROR(dbscan.Fit(scaled, options.dbscan));
    if (dbscan.num_clusters() == 0) {
      return Status::FailedPrecondition(
          "DBSCAN found no clusters; loosen eps/min_points");
    }
    model.dbscan_centroids_ = dbscan.centroids();
    model.num_templates_ = dbscan.num_clusters();
    model.BuildAssignPath();
    return model;
  }

  // k-means path (Alg. 1 line 9).
  ml::KMeansOptions km = options.kmeans;
  km.num_clusters = options.num_templates;
  km.seed = options.seed;
  WMP_RETURN_IF_ERROR(model.kmeans_.Fit(scaled, km));
  model.num_templates_ = model.kmeans_.num_clusters();
  model.BuildAssignPath();
  return model;
}

void TemplateModel::BuildAssignPath() {
  if (options_.method != TemplateMethod::kPlanKMeans &&
      options_.method != TemplateMethod::kPlanDbscan) {
    return;
  }
  featurizer_ =
      std::make_shared<PlanFeaturizer>(options_.log_transform_cards);
  centroid_index_ = std::make_shared<ml::CentroidIndex>(AssignCentroids());
  assign_counters_ = std::make_shared<AssignCounters>();
}

ml::CentroidIndex::AssignStats TemplateModel::assign_stats() const {
  ml::CentroidIndex::AssignStats s;
  if (assign_counters_ == nullptr) return s;
  s.rows = assign_counters_->rows.load(std::memory_order_relaxed);
  s.bound_skips =
      assign_counters_->bound_skips.load(std::memory_order_relaxed);
  s.early_exits =
      assign_counters_->early_exits.load(std::memory_order_relaxed);
  s.full_distances =
      assign_counters_->full_distances.load(std::memory_order_relaxed);
  return s;
}

Result<std::vector<double>> TemplateModel::Featurize(
    const workloads::QueryRecord& record) const {
  switch (options_.method) {
    case TemplateMethod::kPlanKMeans:
    case TemplateMethod::kPlanDbscan: {
      if (!options_.log_transform_cards) return record.plan_features;
      // Odd slots hold summed cardinalities (see plan/features.h layout).
      std::vector<double> row = record.plan_features;
      for (size_t i = 1; i < row.size(); i += 2) row[i] = std::log1p(row[i]);
      return row;
    }
    case TemplateMethod::kBagOfWords:
      return bow_.Transform(record.sql_text);
    case TemplateMethod::kTextMining:
      return schema_vectorizer_.Transform(record.sql_text);
    case TemplateMethod::kWordEmbedding:
      return embeddings_.Transform(record.sql_text);
    case TemplateMethod::kRuleBased:
      return Status::Internal("rule-based templates have no feature vector");
  }
  return Status::Internal("unhandled template method");
}

Result<int> TemplateModel::Assign(
    const workloads::QueryRecord& record) const {
  if (num_templates_ == 0) {
    return Status::FailedPrecondition("TemplateModel not learned");
  }
  if (options_.method == TemplateMethod::kRuleBased) {
    return rules_.Classify(record.query);
  }
  WMP_ASSIGN_OR_RETURN(std::vector<double> row, Featurize(record));
  WMP_RETURN_IF_ERROR(scaler_.TransformRow(&row));
  if (options_.method == TemplateMethod::kPlanDbscan) {
    double best = std::numeric_limits<double>::max();
    int best_c = 0;
    for (size_t c = 0; c < dbscan_centroids_.rows(); ++c) {
      const double d = ml::SquaredDistance(
          row.data(), dbscan_centroids_.RowPtr(c), row.size());
      if (d < best) {
        best = d;
        best_c = static_cast<int>(c);
      }
    }
    return best_c;
  }
  return kmeans_.Assign(row);
}

Result<ml::Matrix> TemplateModel::FeaturizeBatch(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& indices) const {
  const size_t n = indices.size();
  switch (options_.method) {
    case TemplateMethod::kPlanKMeans:
    case TemplateMethod::kPlanDbscan: {
      // Fast path: plan features are precomputed per record, so batching is
      // a parallel gather into contiguous rows (plus the optional log1p).
      if (n == 0) return Status::InvalidArgument("FeaturizeBatch: no rows");
      const size_t d = records[indices[0]].plan_features.size();
      ml::Matrix z(n, d);
      std::atomic<bool> mismatch{false};
      const bool log_cards = options_.log_transform_cards;
      util::ParallelFor(n, 512, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const std::vector<double>& f = records[indices[i]].plan_features;
          if (f.size() != d) {
            mismatch.store(true, std::memory_order_relaxed);
            return;
          }
          double* row = z.RowPtr(i);
          std::copy(f.begin(), f.end(), row);
          if (log_cards) {
            // Odd slots hold summed cardinalities (plan/features.h layout).
            for (size_t c = 1; c < d; c += 2) row[c] = std::log1p(row[c]);
          }
        }
      });
      if (mismatch.load(std::memory_order_relaxed)) {
        return Status::InvalidArgument(
            "records disagree on plan-feature length");
      }
      return z;
    }
    default: {
      // Text-based ablation methods: their vectorizers are not declared
      // thread-safe, so keep the row loop serial.
      ml::Matrix z;
      for (uint32_t i : indices) {
        WMP_ASSIGN_OR_RETURN(std::vector<double> row, Featurize(records[i]));
        WMP_RETURN_IF_ERROR(z.AppendRow(row));
      }
      return z;
    }
  }
}

Result<std::vector<int>> TemplateModel::AssignBatch(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& indices) const {
  if (num_templates_ == 0) {
    return Status::FailedPrecondition("TemplateModel not learned");
  }
  if (indices.empty()) return std::vector<int>{};

  if (options_.method == TemplateMethod::kRuleBased) {
    std::vector<int> ids(indices.size());
    util::ParallelFor(indices.size(), 64, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        ids[i] = rules_.Classify(records[indices[i]].query);
      }
    });
    return ids;
  }

  if (options_.method == TemplateMethod::kPlanKMeans ||
      options_.method == TemplateMethod::kPlanDbscan) {
    // Fused cold path: featurize -> standardize -> assign through one
    // thread-local grow-only scratch matrix. Zero per-call heap traffic
    // once the scratch has warmed to the steady-state batch size.
    const Featurizer& featurizer = *featurizer_;
    const size_t n = indices.size();
    thread_local ml::Matrix scratch;
    ml::Matrix& z = scratch;
    z.Reshape(n, featurizer.dim());
    std::atomic<bool> featurize_failed{false};
    util::ParallelFor(n, 512, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        if (!featurizer.FeaturizeInto(records[indices[i]], z.RowPtr(i))
                 .ok()) {
          featurize_failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
    if (featurize_failed.load(std::memory_order_relaxed)) {
      // Serial re-run to surface the exact failing record's status.
      for (uint32_t i : indices) {
        WMP_RETURN_IF_ERROR(featurizer.FeaturizeInto(records[i], z.RowPtr(0)));
      }
      return Status::Internal("featurize failed only under parallelism");
    }
    WMP_RETURN_IF_ERROR(scaler_.TransformInPlace(&z));

    std::vector<int> ids(n);
    if (pruned_assign_ && centroid_index_ != nullptr) {
      ml::CentroidIndex::AssignStats stats;
      centroid_index_->Assign(z.RowPtr(0), n, ids.data(), &stats);
      if (assign_counters_ != nullptr) {
        assign_counters_->rows.fetch_add(stats.rows,
                                         std::memory_order_relaxed);
        assign_counters_->bound_skips.fetch_add(stats.bound_skips,
                                                std::memory_order_relaxed);
        assign_counters_->early_exits.fetch_add(stats.early_exits,
                                                std::memory_order_relaxed);
        assign_counters_->full_distances.fetch_add(
            stats.full_distances, std::memory_order_relaxed);
      }
    } else {
      // Reference oracle: the full scan CentroidIndex must agree with.
      const ml::Matrix& centroids = AssignCentroids();
      util::ParallelFor(n, 256, [&](size_t begin, size_t end) {
        ml::NearestCentroids(z.RowPtr(begin), end - begin, centroids,
                             ids.data() + begin);
      });
    }
    return ids;
  }

  // Text-based ablation methods: batch-gather then full scan.
  WMP_ASSIGN_OR_RETURN(ml::Matrix z, FeaturizeBatch(records, indices));
  WMP_RETURN_IF_ERROR(scaler_.TransformInPlace(&z));
  return kmeans_.AssignAll(z);
}

size_t TemplateModel::SerializedBytes() const {
  BinaryWriter writer;
  scaler_.Serialize(&writer);
  if (kmeans_.fitted()) kmeans_.Serialize(&writer);
  return writer.size();
}

Result<int> ChooseNumTemplates(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<uint32_t>& train_indices, const std::vector<int>& ks,
    uint64_t seed) {
  if (ks.empty()) return Status::InvalidArgument("empty k candidate list");
  if (train_indices.empty()) {
    return Status::InvalidArgument("no training queries");
  }
  ml::Matrix z = PlanFeatureMatrix(records, train_indices);
  ml::StandardScaler scaler;
  WMP_RETURN_IF_ERROR(scaler.Fit(z));
  WMP_ASSIGN_OR_RETURN(ml::Matrix scaled, scaler.Transform(z));
  ml::KMeansOptions base;
  base.seed = seed;
  base.n_init = 1;  // the sweep itself provides robustness
  WMP_ASSIGN_OR_RETURN(std::vector<double> inertias,
                       ml::KMeansElbowCurve(scaled, ks, base));
  return ks[ml::PickElbow(inertias)];
}

namespace {
constexpr uint32_t kTemplateModelTag = 0x574D5054;  // "WMPT"
}  // namespace

Status TemplateModel::Serialize(BinaryWriter* writer) const {
  if (num_templates_ == 0) {
    return Status::FailedPrecondition("TemplateModel not learned");
  }
  switch (options_.method) {
    case TemplateMethod::kPlanKMeans:
    case TemplateMethod::kPlanDbscan:
    case TemplateMethod::kRuleBased:
      break;
    default:
      return Status::NotImplemented(
          "text-based template methods are ablation-only and not "
          "serializable");
  }
  writer->WriteU32(kTemplateModelTag);
  writer->WriteU8(static_cast<uint8_t>(options_.method));
  writer->WriteI64(num_templates_);
  writer->WriteU8(options_.log_transform_cards ? 1 : 0);
  switch (options_.method) {
    case TemplateMethod::kPlanKMeans:
      scaler_.Serialize(writer);
      kmeans_.Serialize(writer);
      break;
    case TemplateMethod::kPlanDbscan:
      scaler_.Serialize(writer);
      writer->WriteU64(dbscan_centroids_.rows());
      writer->WriteU64(dbscan_centroids_.cols());
      writer->WriteDoubleVec(dbscan_centroids_.data());
      break;
    case TemplateMethod::kRuleBased: {
      const auto& rules = rules_.rules();
      writer->WriteU64(rules.size());
      for (const text::TemplateRule& rule : rules) {
        writer->WriteString(rule.name);
        writer->WriteU64(rule.required_tables.size());
        for (const std::string& t : rule.required_tables) writer->WriteString(t);
        writer->WriteI64(rule.min_joins);
        writer->WriteI64(rule.max_joins);
        // Optionals encoded as 0 = unset, 1 = false, 2 = true.
        auto enc = [](const std::optional<bool>& v) -> uint8_t {
          return !v.has_value() ? 0 : (*v ? 2 : 1);
        };
        writer->WriteU8(enc(rule.requires_aggregation));
        writer->WriteU8(enc(rule.requires_order_by));
      }
      break;
    }
    default:
      return Status::Internal("unreachable");
  }
  return Status::OK();
}

Result<TemplateModel> TemplateModel::Deserialize(BinaryReader* reader) {
  WMP_ASSIGN_OR_RETURN(uint32_t tag, reader->ReadU32());
  if (tag != kTemplateModelTag) {
    return Status::InvalidArgument("bad template-model magic tag");
  }
  TemplateModel model;
  WMP_ASSIGN_OR_RETURN(uint8_t method, reader->ReadU8());
  model.options_.method = static_cast<TemplateMethod>(method);
  WMP_ASSIGN_OR_RETURN(int64_t k, reader->ReadI64());
  model.num_templates_ = static_cast<int>(k);
  model.options_.num_templates = model.num_templates_;
  WMP_ASSIGN_OR_RETURN(uint8_t log_flag, reader->ReadU8());
  model.options_.log_transform_cards = log_flag != 0;
  switch (model.options_.method) {
    case TemplateMethod::kPlanKMeans: {
      WMP_ASSIGN_OR_RETURN(model.scaler_,
                           ml::StandardScaler::Deserialize(reader));
      WMP_ASSIGN_OR_RETURN(model.kmeans_, ml::KMeans::Deserialize(reader));
      break;
    }
    case TemplateMethod::kPlanDbscan: {
      WMP_ASSIGN_OR_RETURN(model.scaler_,
                           ml::StandardScaler::Deserialize(reader));
      WMP_ASSIGN_OR_RETURN(uint64_t rows, reader->ReadU64());
      WMP_ASSIGN_OR_RETURN(uint64_t cols, reader->ReadU64());
      WMP_ASSIGN_OR_RETURN(std::vector<double> data, reader->ReadDoubleVec());
      if (data.size() != rows * cols) {
        return Status::InvalidArgument("dbscan centroid stream corrupt");
      }
      model.dbscan_centroids_ = ml::Matrix(rows, cols, std::move(data));
      break;
    }
    case TemplateMethod::kRuleBased: {
      WMP_ASSIGN_OR_RETURN(uint64_t n, reader->ReadU64());
      std::vector<text::TemplateRule> rules(n);
      for (uint64_t i = 0; i < n; ++i) {
        text::TemplateRule& rule = rules[i];
        WMP_ASSIGN_OR_RETURN(rule.name, reader->ReadString());
        WMP_ASSIGN_OR_RETURN(uint64_t nt, reader->ReadU64());
        rule.required_tables.resize(nt);
        for (uint64_t t = 0; t < nt; ++t) {
          WMP_ASSIGN_OR_RETURN(rule.required_tables[t], reader->ReadString());
        }
        WMP_ASSIGN_OR_RETURN(int64_t mn, reader->ReadI64());
        rule.min_joins = static_cast<int>(mn);
        WMP_ASSIGN_OR_RETURN(int64_t mx, reader->ReadI64());
        rule.max_joins = static_cast<int>(mx);
        auto dec = [](uint8_t v) -> std::optional<bool> {
          if (v == 0) return std::nullopt;
          return v == 2;
        };
        WMP_ASSIGN_OR_RETURN(uint8_t agg, reader->ReadU8());
        rule.requires_aggregation = dec(agg);
        WMP_ASSIGN_OR_RETURN(uint8_t ord, reader->ReadU8());
        rule.requires_order_by = dec(ord);
      }
      model.rules_ = text::RuleBasedClassifier(std::move(rules));
      break;
    }
    default:
      return Status::InvalidArgument("unsupported serialized template method");
  }
  model.BuildAssignPath();
  return model;
}

}  // namespace wmp::core
