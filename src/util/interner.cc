#include "util/interner.h"

#include <mutex>
#include <shared_mutex>
#include <unordered_set>

#include "util/arena.h"

namespace wmp::util {

struct StringInterner::Impl {
  mutable std::shared_mutex mu;
  std::unordered_set<std::string_view> set;
  Arena arena{64 << 10};
  size_t bytes = 0;
};

StringInterner::StringInterner() : impl_(new Impl) {}

StringInterner& StringInterner::Global() {
  // Leaked intentionally (see header): interned views outlive everything.
  static StringInterner* const interner = new StringInterner;
  return *interner;
}

std::string_view StringInterner::Intern(std::string_view s) {
  if (s.empty()) return {};
  {
    std::shared_lock<std::shared_mutex> lock(impl_->mu);
    auto it = impl_->set.find(s);
    if (it != impl_->set.end()) return *it;
  }
  std::unique_lock<std::shared_mutex> lock(impl_->mu);
  auto it = impl_->set.find(s);
  if (it != impl_->set.end()) return *it;
  const std::string_view stored = impl_->arena.CopyString(s);
  impl_->set.insert(stored);
  impl_->bytes += stored.size();
  return stored;
}

size_t StringInterner::size() const {
  std::shared_lock<std::shared_mutex> lock(impl_->mu);
  return impl_->set.size();
}

size_t StringInterner::bytes() const {
  std::shared_lock<std::shared_mutex> lock(impl_->mu);
  return impl_->bytes;
}

}  // namespace wmp::util
