#ifndef WMP_UTIL_STRINGS_H_
#define WMP_UTIL_STRINGS_H_

/// \file strings.h
/// Small string utilities shared across the SQL lexer, plan parser, and
/// report printers.

#include <string>
#include <string_view>
#include <vector>

namespace wmp {

/// ASCII lower-case copy.
std::string ToLower(std::string_view s);
/// ASCII upper-case copy.
std::string ToUpper(std::string_view s);

/// Strips leading/trailing whitespace.
std::string_view Trim(std::string_view s);

/// Splits on a single character; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any whitespace run; empty pieces are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix` (case-sensitive).
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Renders a byte count as a human-readable "12.3 KB" style string.
std::string HumanBytes(double bytes);

}  // namespace wmp

#endif  // WMP_UTIL_STRINGS_H_
