#include "util/io.h"

#include <fstream>

namespace wmp {

void BinaryWriter::WriteString(const std::string& s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  Append(s.data(), s.size());
}

void BinaryWriter::WriteDoubleVec(const std::vector<double>& v) {
  WriteU64(v.size());
  if (!v.empty()) Append(v.data(), v.size() * sizeof(double));
}

void BinaryWriter::WriteIntVec(const std::vector<int>& v) {
  WriteU64(v.size());
  if (!v.empty()) Append(v.data(), v.size() * sizeof(int));
}

Status BinaryWriter::WriteToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
  if (!out) return Status::IOError("short write: " + path);
  return Status::OK();
}

Status BinaryReader::Take(void* out, size_t n) {
  if (pos_ + n > buf_.size()) {
    return Status::OutOfRange("binary stream truncated");
  }
  std::memcpy(out, buf_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Result<uint8_t> BinaryReader::ReadU8() {
  uint8_t v;
  WMP_RETURN_IF_ERROR(Take(&v, 1));
  return v;
}

Result<uint16_t> BinaryReader::ReadU16() {
  uint16_t v;
  WMP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}

Result<uint32_t> BinaryReader::ReadU32() {
  uint32_t v;
  WMP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}

Result<uint32_t> BinaryReader::PeekU32() {
  const size_t saved = pos_;
  Result<uint32_t> r = ReadU32();
  pos_ = saved;
  return r;
}

Result<uint64_t> BinaryReader::ReadU64() {
  uint64_t v;
  WMP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}

Result<int64_t> BinaryReader::ReadI64() {
  int64_t v;
  WMP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}

Result<double> BinaryReader::ReadDouble() {
  double v;
  WMP_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}

Result<std::string> BinaryReader::ReadString() {
  WMP_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  if (pos_ + n > buf_.size()) return Status::OutOfRange("string truncated");
  std::string s(buf_.data() + pos_, n);
  pos_ += n;
  return s;
}

Result<std::vector<double>> BinaryReader::ReadDoubleVec() {
  WMP_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (pos_ + n * sizeof(double) > buf_.size()) {
    return Status::OutOfRange("double vector truncated");
  }
  std::vector<double> v(n);
  if (n > 0) WMP_RETURN_IF_ERROR(Take(v.data(), n * sizeof(double)));
  return v;
}

Result<std::vector<int>> BinaryReader::ReadIntVec() {
  WMP_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
  if (pos_ + n * sizeof(int) > buf_.size()) {
    return Status::OutOfRange("int vector truncated");
  }
  std::vector<int> v(n);
  if (n > 0) WMP_RETURN_IF_ERROR(Take(v.data(), n * sizeof(int)));
  return v;
}

Result<BinaryReader> BinaryReader::FromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  return BinaryReader(std::move(buf));
}

}  // namespace wmp
