#ifndef WMP_UTIL_SYNC_H_
#define WMP_UTIL_SYNC_H_

/// \file sync.h
/// Small synchronization helpers for the serving layer and its harnesses.
///
/// `Latch` is a single-use countdown barrier (the shape of C++20's
/// std::latch, kept local so the toolchain floor stays what CMake already
/// requires): the serve benches and concurrency tests use it to release N
/// client threads simultaneously so the dispatcher sees genuinely
/// concurrent submissions rather than a staggered trickle.

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace wmp::util {

/// \brief Single-use countdown latch.
class Latch {
 public:
  explicit Latch(size_t count) : count_(count) {}
  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  /// Decrements the count; at zero, releases all waiters.
  void CountDown() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  /// Blocks until the count reaches zero.
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  /// CountDown() then Wait() — the "start line" idiom for worker threads.
  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (count_ > 0 && --count_ == 0) {
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return count_ == 0; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t count_;
};

}  // namespace wmp::util

#endif  // WMP_UTIL_SYNC_H_
