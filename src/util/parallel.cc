#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace wmp::util {

namespace {

thread_local bool t_in_worker = false;

// Shared state of one ParallelFor call. Heap-allocated and reference-counted
// so a pool worker that wakes up late can still touch it safely after the
// originating call returned (it just observes `next >= num_chunks` and
// becomes a no-op).
struct ParallelState {
  size_t n = 0;
  size_t chunk = 0;
  size_t num_chunks = 0;
  std::function<void(size_t, size_t)> fn;

  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mutex;
  std::condition_variable cv;
};

// Claims and runs chunks until the range is exhausted.
void DrainChunks(ParallelState& state) {
  const bool was_worker = t_in_worker;
  t_in_worker = true;
  for (;;) {
    const size_t c = state.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= state.num_chunks) break;
    const size_t begin = c * state.chunk;
    const size_t end = std::min(begin + state.chunk, state.n);
    state.fn(begin, end);
    if (state.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state.num_chunks) {
      std::lock_guard<std::mutex> lock(state.mutex);
      state.cv.notify_all();
    }
  }
  t_in_worker = was_worker;
}

// Process-wide worker pool. Workers are created on demand (never more than
// kMaxWorkers), block on a shared queue of ParallelState references, and are
// joined at static destruction.
class WorkerPool {
 public:
  static WorkerPool& Instance() {
    static WorkerPool pool;
    return pool;
  }

  void Run(const std::shared_ptr<ParallelState>& state, size_t num_threads) {
    const size_t helpers =
        std::min(num_threads - 1, state->num_chunks > 0 ? state->num_chunks - 1
                                                        : size_t{0});
    if (helpers > 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      EnsureWorkersLocked(helpers);
      for (size_t i = 0; i < helpers; ++i) pending_.push_back(state);
      cv_.notify_all();
    }
    // The caller always participates, so completion never depends on pool
    // capacity (including the hardware_concurrency() == 1 case).
    DrainChunks(*state);
    std::unique_lock<std::mutex> lock(state->mutex);
    state->cv.wait(lock, [&] {
      return state->done.load(std::memory_order_acquire) == state->num_chunks;
    });
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
      cv_.notify_all();
    }
    for (std::thread& t : threads_) t.join();
  }

 private:
  static constexpr size_t kMaxWorkers = 255;

  WorkerPool() = default;

  void EnsureWorkersLocked(size_t want) {
    const size_t cap = std::min(want, kMaxWorkers);
    while (threads_.size() < cap) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void WorkerLoop() {
    t_in_worker = true;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (stop_) return;
      std::shared_ptr<ParallelState> state = std::move(pending_.front());
      pending_.pop_front();
      lock.unlock();
      DrainChunks(*state);
      state.reset();
      lock.lock();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<ParallelState>> pending_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

std::atomic<int> g_default_threads{0};

// Per-thread override installed by ScopedParallelism; 0 = none.
thread_local int t_thread_override = 0;

}  // namespace

size_t HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void SetDefaultParallelism(int num_threads) {
  g_default_threads.store(num_threads > 0 ? num_threads : 0,
                          std::memory_order_relaxed);
}

size_t DefaultParallelism() {
  const int configured = g_default_threads.load(std::memory_order_relaxed);
  return configured > 0 ? static_cast<size_t>(configured) : HardwareThreads();
}

bool InParallelWorker() { return t_in_worker; }

ScopedParallelism::ScopedParallelism(int num_threads)
    : active_(num_threads > 0) {
  if (active_) {
    previous_ = t_thread_override;
    t_thread_override = num_threads;
  }
}

ScopedParallelism::~ScopedParallelism() {
  if (active_) t_thread_override = previous_;
}

void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& fn,
                 int num_threads) {
  if (n == 0) return;
  if (num_threads <= 0) num_threads = t_thread_override;
  const size_t threads =
      num_threads > 0 ? static_cast<size_t>(num_threads) : DefaultParallelism();
  if (grain == 0) grain = 1;
  // Serial fast path: tiny inputs, single-thread config, or nested calls
  // (a worker running a chunk must not block on a second ParallelFor).
  if (threads <= 1 || n <= grain || t_in_worker) {
    fn(0, n);
    return;
  }
  auto state = std::make_shared<ParallelState>();
  state->n = n;
  // Aim for a few chunks per worker (dynamic claiming smooths imbalance)
  // without splitting below the caller's grain.
  const size_t target_chunks = threads * 4;
  state->chunk = std::max(grain, (n + target_chunks - 1) / target_chunks);
  state->num_chunks = (n + state->chunk - 1) / state->chunk;
  state->fn = fn;
  WorkerPool::Instance().Run(state, threads);
}

}  // namespace wmp::util
