#ifndef WMP_UTIL_HASH_H_
#define WMP_UTIL_HASH_H_

/// \file hash.h
/// Shared non-cryptographic hashing primitives for the serving layer:
/// query/workload content fingerprints (the histogram-cache key), tenant
/// routing, and the publish-frame artifact checksum
/// (net::ArtifactChecksum). The last one crosses the wire, so the byte
/// hash is part of the protocol: HashBytes consumes its input as
/// little-endian 8-byte words, which is bit-stable on every platform the
/// wire protocol itself supports (the protocol is little-endian
/// throughout). Nothing here is suitable where an adversary controls the
/// input — these are integrity and distribution hashes, not MACs.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace wmp::util {

/// splitmix64 finalizer: cheap, well-mixed, and stable across platforms.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Word-at-a-time content hash: one splitmix64 round per 8-byte chunk.
/// Fingerprinting sits on the serving hot path (every submitted workload
/// keys the histogram cache off its member queries), so bytes are consumed
/// eight at a time rather than with a byte-loop FNV.
inline uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed ^ (0x9E3779B97F4A7C15ull * (len + 1));
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t word;
    std::memcpy(&word, p + i, sizeof(word));
    h = Mix64(h ^ word);
  }
  uint64_t tail = 0;
  for (size_t shift = 0; i < len; ++i, shift += 8) {
    tail |= static_cast<uint64_t>(p[i]) << shift;
  }
  return Mix64(h ^ tail);
}

/// Convenience overload for string keys (tenant routing).
inline uint64_t HashString(std::string_view s, uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), seed);
}

}  // namespace wmp::util

#endif  // WMP_UTIL_HASH_H_
