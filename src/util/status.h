#ifndef WMP_UTIL_STATUS_H_
#define WMP_UTIL_STATUS_H_

/// \file status.h
/// Error handling primitives for the LearnedWMP library.
///
/// The public API never throws; fallible operations return `Status` (or
/// `Result<T>` when they produce a value), following the Arrow/RocksDB idiom.

#include <cassert>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace wmp {

/// Machine-readable error category carried by a `Status`.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kIOError = 6,
  kNotImplemented = 7,
  kInternal = 8,
  /// An operation's deadline expired before it completed. Distinct from
  /// kIOError so retry policies can tell "the wire broke" (reconnect)
  /// from "the peer is slow" (back off, maybe fail over).
  kDeadlineExceeded = 9,
};

/// \brief Returns a human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: either OK or an error code plus message.
///
/// `Status` is cheap to copy in the OK case (a single null pointer); error
/// state is heap-allocated only when an error actually occurs.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(State{code, std::move(message)})) {}

  /// \name Factory helpers, one per error category.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// @}

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// `"OK"` or `"<Code>: <message>"`.
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const State> state_;  // nullptr == OK
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// \brief Either a value of type `T` or an error `Status`.
///
/// Accessing the value of an errored `Result` is a programming error and
/// aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Implicit construction from an error status. `st` must not be OK.
  Result(Status st) : v_(std::move(st)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(v_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(v_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(std::get<T>(v_)); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T ValueOr(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> v_;
};

namespace internal {
// Concatenates tokens; an extra indirection so __LINE__ expands first.
#define WMP_CONCAT_IMPL(x, y) x##y
#define WMP_CONCAT(x, y) WMP_CONCAT_IMPL(x, y)
}  // namespace internal

/// Propagates a non-OK Status to the caller.
#define WMP_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::wmp::Status _st = (expr);                \
    if (!_st.ok()) return _st;                 \
  } while (0)

namespace internal {
/// Prints the failed expression + status and aborts. Out of line so the
/// macro below stays cheap at every call site.
[[noreturn]] void CheckOkFailed(const char* expr, const Status& status);
}  // namespace internal

/// Always-on invariant check for Status-returning setup code (catalog
/// construction, static model registration): evaluates `expr` in every
/// build mode and aborts with a diagnostic on failure. Unlike
/// `assert(expr.ok())`, the call is NOT compiled out under NDEBUG — wrapping
/// side-effecting calls in plain assert silently skips them in release
/// builds.
#define WMP_CHECK_OK(expr)                                  \
  do {                                                      \
    ::wmp::Status _st = (expr);                             \
    if (!_st.ok()) ::wmp::internal::CheckOkFailed(#expr, _st); \
  } while (0)

/// Evaluates a Result-returning expression; on success binds the value to
/// `lhs`, on failure propagates the error Status.
#define WMP_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  WMP_ASSIGN_OR_RETURN_IMPL(WMP_CONCAT(_wmp_res_, __LINE__), lhs, rexpr)

#define WMP_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace wmp

#endif  // WMP_UTIL_STATUS_H_
