#ifndef WMP_UTIL_TIMER_H_
#define WMP_UTIL_TIMER_H_

/// \file timer.h
/// Wall-clock stopwatch used by the training/inference time harnesses
/// (Figs. 6 and 7).

#include <chrono>
#include <cstdint>

namespace wmp {

/// \brief Monotonic stopwatch with microsecond resolution.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wmp

#endif  // WMP_UTIL_TIMER_H_
