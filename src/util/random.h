#ifndef WMP_UTIL_RANDOM_H_
#define WMP_UTIL_RANDOM_H_

/// \file random.h
/// Deterministic random number generation for simulation and ML training.
///
/// All stochastic components of the library (data generators, the execution
/// simulator, k-means init, neural-net init, ...) draw from `Rng`, a
/// xoshiro256** engine. Seeding every component explicitly keeps experiments
/// bit-reproducible across runs.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wmp {

/// \brief xoshiro256** pseudo-random generator with convenience samplers.
///
/// Satisfies the UniformRandomBitGenerator concept, so it can also be used
/// with `<random>` distributions and `std::shuffle`.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the engine via splitmix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit draw.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform integer in `[lo, hi]` (inclusive). Requires `lo <= hi`.
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Uniform double in `[0, 1)`.
  double UniformDouble();
  /// Uniform double in `[lo, hi)`.
  double UniformDouble(double lo, double hi);
  /// Standard normal via Box-Muller (cached spare deviate).
  double Normal(double mean = 0.0, double stddev = 1.0);
  /// Log-normal with the underlying normal's `mu`/`sigma`.
  double LogNormal(double mu, double sigma);
  /// Bernoulli draw.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Picks an index in `[0, weights.size())` proportionally to `weights`.
  /// Non-positive total weight falls back to uniform choice.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Derives an independent child generator (for per-component streams).
  Rng Fork();

 private:
  uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// \brief Samples ranks from a Zipf(n, theta) distribution.
///
/// Rank 1 is the most frequent value. `theta == 0` degenerates to uniform.
/// The CDF is precomputed, so construction is O(n) and sampling is
/// O(log n); intended for value domains up to a few hundred thousand.
class ZipfDistribution {
 public:
  /// \param n     number of distinct ranks (>= 1)
  /// \param theta skew parameter (>= 0); typical database skew is 0.5-1.2.
  ZipfDistribution(uint64_t n, double theta);

  /// Draws a rank in `[1, n]`.
  uint64_t Sample(Rng* rng) const;

  /// Probability mass of rank `k` (1-based).
  double Pmf(uint64_t k) const;

  /// Cumulative probability of ranks `1..k`. `Cdf(n) == 1`.
  double Cdf(uint64_t k) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[k-1] = P(rank <= k)
};

}  // namespace wmp

#endif  // WMP_UTIL_RANDOM_H_
