#ifndef WMP_UTIL_PARALLEL_H_
#define WMP_UTIL_PARALLEL_H_

/// \file parallel.h
/// Minimal data-parallel runtime for the batched inference path.
///
/// The library's hot loops (batch regression, template assignment, feature
/// scaling, label simulation) are embarrassingly parallel over rows. This
/// header provides the one primitive they all share — `ParallelFor` — backed
/// by a single lazily-created, process-wide worker pool so repeated batch
/// calls never pay thread startup costs.
///
/// Threading model
///  * Workers are spawned on the first parallel call and live for the
///    process lifetime (joined at static destruction).
///  * `ParallelFor` partitions `[0, n)` into contiguous chunks and invokes
///    `fn(begin, end)` on the calling thread plus the pool; it returns only
///    after every chunk finished, so callers may freely capture locals.
///  * Nested calls degrade to serial execution on the calling worker —
///    re-entrancy is safe, never deadlocks, and never oversubscribes.
///  * `fn` must not throw; callers writing to shared output buffers must
///    write only inside their `[begin, end)` slice (all library callers do).
///  * Zero-allocation serial fast path when `n` is small or one thread is
///    configured, so scalar call sites can use it unconditionally.

#include <cstddef>
#include <functional>

namespace wmp::util {

/// Number of hardware threads (>= 1 even when the runtime reports 0).
size_t HardwareThreads();

/// Sets the process-wide default worker count used when `ParallelFor` is
/// called with `num_threads == 0`. Pass 0 to restore "use all hardware
/// threads". Intended for session setup (engine::BatchScorerOptions) and the
/// bench thread sweeps; not meant to be raced against in-flight ParallelFor
/// calls.
void SetDefaultParallelism(int num_threads);

/// Resolved default worker count (>= 1).
size_t DefaultParallelism();

/// Runs `fn(begin, end)` over a disjoint partition of `[0, n)`.
///
/// \param n            total iteration count
/// \param grain        minimum chunk size; work is not split below it, and
///                     `n <= grain` runs serially on the caller
/// \param fn           range body; invoked concurrently on distinct ranges
/// \param num_threads  worker override for this call; 0 = the calling
///                     thread's ScopedParallelism override if active, else
///                     the process default
void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& fn,
                 int num_threads = 0);

/// \brief Scopes a worker-count override to the calling thread.
///
/// While alive, ParallelFor calls issued from this thread (with
/// `num_threads == 0`) use `num_threads` workers. Thread-local, so
/// concurrent sessions on different threads cannot race each other's
/// budgets, and destruction restores the exact previous override
/// (including "none"). Passing 0 is a no-op scope.
class ScopedParallelism {
 public:
  explicit ScopedParallelism(int num_threads);
  ~ScopedParallelism();
  ScopedParallelism(const ScopedParallelism&) = delete;
  ScopedParallelism& operator=(const ScopedParallelism&) = delete;

 private:
  bool active_;
  int previous_ = 0;
};

/// True while the calling thread is a pool worker executing a ParallelFor
/// chunk (nested parallel calls serialize on this).
bool InParallelWorker();

}  // namespace wmp::util

#endif  // WMP_UTIL_PARALLEL_H_
