#ifndef WMP_UTIL_MPSC_QUEUE_H_
#define WMP_UTIL_MPSC_QUEUE_H_

/// \file mpsc_queue.h
/// Multi-producer / single-consumer request queue for the async serving
/// layer (engine::ScoringService).
///
/// Producers (client threads calling Submit) push from any thread; one
/// dispatcher thread drains. The consumer-side API is shaped for
/// micro-batching: wait until something is pending (optionally with a
/// deadline, the dispatcher's `max_delay` flush knob), then pop up to
/// `max_batch` items in one call.
///
/// Close() makes further pushes fail and wakes the consumer so it can drain
/// the remaining items and exit — the service's clean-shutdown path: every
/// queued request is still scored, no future is ever abandoned.
///
/// Implementation: mutex + condition variable over a deque. The queue
/// carries pointers/requests, not work; scoring dominates end-to-end cost,
/// so a lock-free MPSC list would buy nothing measurable here while losing
/// the timed-wait the dispatcher needs.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace wmp::util {

/// Outcome of a consumer-side wait.
enum class QueueWait {
  kReady,    ///< at least one item is pending
  kTimeout,  ///< deadline passed with the queue still empty
  kClosed,   ///< queue closed and fully drained — consumer should exit
};

/// \brief Unbounded MPSC queue. `T` must be movable.
///
/// Thread-safety: Push/Close/size from any thread; the blocking waits and
/// PopSome are intended for the single consumer (they are mutually
/// thread-safe too, but batching semantics assume one drainer).
template <typename T>
class MpscQueue {
 public:
  MpscQueue() = default;
  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Enqueues `value`. Returns false (dropping nothing but accepting
  /// nothing) iff the queue is closed.
  bool Push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Closes the queue: subsequent pushes fail, waiting consumers wake.
  /// Items already queued remain poppable (drain-then-exit shutdown).
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Blocks until an item is pending or the queue is closed-and-empty.
  QueueWait WaitNonEmpty() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    return items_.empty() ? QueueWait::kClosed : QueueWait::kReady;
  }

  /// Blocks until an item is pending, `deadline` passes, or the queue is
  /// closed-and-empty.
  QueueWait WaitNonEmptyUntil(std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool signalled = cv_.wait_until(
        lock, deadline, [&] { return !items_.empty() || closed_; });
    if (!items_.empty()) return QueueWait::kReady;
    return signalled ? QueueWait::kClosed : QueueWait::kTimeout;
  }

  /// Pops up to `max` items, appending them to `*out`. Non-blocking.
  /// Returns the number popped.
  size_t PopSome(size_t max, std::vector<T>* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t popped = 0;
    while (popped < max && !items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
      ++popped;
    }
    return popped;
  }

  /// Items currently pending (racy by nature; for stats/monitoring).
  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace wmp::util

#endif  // WMP_UTIL_MPSC_QUEUE_H_
