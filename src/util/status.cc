#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace wmp {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeToString(state_->code);
  s += ": ";
  s += state_->message;
  return s;
}

namespace internal {

void CheckOkFailed(const char* expr, const Status& status) {
  std::fprintf(stderr, "WMP_CHECK_OK failed: %s\n  status: %s\n", expr,
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal

}  // namespace wmp
