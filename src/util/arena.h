#ifndef WMP_UTIL_ARENA_H_
#define WMP_UTIL_ARENA_H_

/// \file arena.h
/// Bump allocator + arena-backed small vector for the cold featurization
/// path (SQL ASTs, plan trees, lexer scratch).
///
/// The front end allocates one arena per parse/plan batch, builds every node
/// into it, and calls Reset() between batches: chunks are kept and rewound,
/// so a warmed-up arena performs zero heap traffic per node. Objects placed
/// in an arena must be trivially destructible — nothing is destroyed, memory
/// is simply reused.
///
/// `Mode::kMalloc` makes every Allocate() an individual heap allocation
/// (freed on Reset/destruction). It exists so benchmarks can run the same
/// code path with the pre-arena allocation behavior as the baseline.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace wmp::util {

/// \brief Chunked bump allocator with a grow-only Reset.
class Arena {
 public:
  enum class Mode : uint8_t {
    kBump,    ///< chunked bump allocation, Reset rewinds and keeps chunks
    kMalloc,  ///< one heap allocation per Allocate (benchmark baseline)
  };

  explicit Arena(size_t first_chunk_bytes = kDefaultFirstChunk,
                 Mode mode = Mode::kBump)
      : mode_(mode), next_chunk_bytes_(first_chunk_bytes) {
    if (next_chunk_bytes_ < kMinChunk) next_chunk_bytes_ = kMinChunk;
  }

  ~Arena() { Release(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    assert((align & (align - 1)) == 0 && "alignment must be a power of two");
    if (bytes == 0) bytes = 1;
    if (mode_ == Mode::kMalloc) {
      void* p = ::operator new(bytes, std::align_val_t(align));
      mallocs_.push_back({p, align});
      bytes_allocated_ += bytes;
      return p;
    }
    uintptr_t ptr = (cursor_ + align - 1) & ~(uintptr_t{align} - 1);
    if (ptr + bytes > limit_) {
      NextChunk(bytes + align);
      ptr = (cursor_ + align - 1) & ~(uintptr_t{align} - 1);
    }
    cursor_ = ptr + bytes;
    bytes_allocated_ += bytes;
    return reinterpret_cast<void*>(ptr);
  }

  /// Constructs a T in the arena. T must be trivially destructible — the
  /// arena never runs destructors.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    void* p = Allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  /// Uninitialized array of `n` T.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Copies `s` into the arena; the view stays valid until Reset().
  std::string_view CopyString(std::string_view s) {
    if (s.empty()) return {};
    char* p = AllocateArray<char>(s.size());
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// Rewinds the arena. kBump keeps every chunk for reuse (grow-only: a
  /// warmed arena never touches the heap again); kMalloc frees everything.
  void Reset() {
    bytes_allocated_ = 0;
    if (mode_ == Mode::kMalloc) {
      FreeMallocs();
      return;
    }
    current_chunk_ = 0;
    if (chunks_.empty()) {
      cursor_ = limit_ = 0;
    } else {
      cursor_ = reinterpret_cast<uintptr_t>(chunks_[0].data);
      limit_ = cursor_ + chunks_[0].size;
    }
  }

  Mode mode() const { return mode_; }
  /// Bytes handed out since the last Reset (excludes alignment padding).
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total chunk bytes held (kBump; 0 for kMalloc).
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  static constexpr size_t kDefaultFirstChunk = 16 << 10;
  static constexpr size_t kMinChunk = 256;

  struct Chunk {
    char* data;
    size_t size;
  };
  struct MallocBlock {
    void* ptr;
    size_t align;
  };

  void NextChunk(size_t min_bytes) {
    // Reuse a retained chunk if the next one is big enough, else grow.
    while (current_chunk_ + 1 < chunks_.size()) {
      ++current_chunk_;
      const Chunk& c = chunks_[current_chunk_];
      if (c.size >= min_bytes) {
        cursor_ = reinterpret_cast<uintptr_t>(c.data);
        limit_ = cursor_ + c.size;
        return;
      }
    }
    size_t size = next_chunk_bytes_;
    if (size < min_bytes) size = min_bytes;
    next_chunk_bytes_ = size * 2;
    char* data = static_cast<char*>(
        ::operator new(size, std::align_val_t(alignof(std::max_align_t))));
    chunks_.push_back({data, size});
    bytes_reserved_ += size;
    current_chunk_ = chunks_.size() - 1;
    cursor_ = reinterpret_cast<uintptr_t>(data);
    limit_ = cursor_ + size;
  }

  void FreeMallocs() {
    for (const MallocBlock& b : mallocs_) {
      ::operator delete(b.ptr, std::align_val_t(b.align));
    }
    mallocs_.clear();
  }

  void Release() {
    FreeMallocs();
    for (const Chunk& c : chunks_) {
      ::operator delete(c.data, std::align_val_t(alignof(std::max_align_t)));
    }
    chunks_.clear();
  }

  Mode mode_;
  uintptr_t cursor_ = 0;
  uintptr_t limit_ = 0;
  std::vector<Chunk> chunks_;
  size_t current_chunk_ = 0;
  size_t next_chunk_bytes_;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
  std::vector<MallocBlock> mallocs_;
};

/// \brief Arena-backed vector of trivially-destructible elements.
///
/// 16 bytes + one arena pointer; growth allocates from the arena (the old
/// buffer is abandoned there — bump arenas reclaim it wholesale on Reset).
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_destructible_v<T>,
                "ArenaVec elements live in an arena and are never destroyed");
  static_assert(std::is_trivially_copyable_v<T>,
                "growth relocates elements with memcpy");

 public:
  ArenaVec() = default;
  explicit ArenaVec(Arena* arena) : arena_(arena) {}

  /// Attaches the backing arena; required before the first push_back when
  /// default-constructed (e.g. as a member initialized later).
  void set_arena(Arena* arena) { arena_ = arena; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& front() { return data_[0]; }
  const T& front() const { return data_[0]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }

  void reserve(size_t cap) {
    if (cap > cap_) Grow(cap);
  }

  void push_back(const T& v) {
    if (size_ == cap_) Grow(size_ ? size_t{cap_} * 2 : 4);
    data_[size_++] = v;
  }

 private:
  void Grow(size_t new_cap) {
    assert(arena_ != nullptr && "ArenaVec used without an arena");
    T* fresh = arena_->AllocateArray<T>(new_cap);
    if (size_ != 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    cap_ = static_cast<uint32_t>(new_cap);
  }

  T* data_ = nullptr;
  uint32_t size_ = 0;
  uint32_t cap_ = 0;
  Arena* arena_ = nullptr;
};

}  // namespace wmp::util

#endif  // WMP_UTIL_ARENA_H_
