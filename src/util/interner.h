#ifndef WMP_UTIL_INTERNER_H_
#define WMP_UTIL_INTERNER_H_

/// \file interner.h
/// Process-wide string interning for identifiers.
///
/// The SQL AST and plan tree store identifiers (table/column/alias names,
/// operator detail strings) as `std::string_view` into the global interner:
/// the vocabulary is bounded by the schema + query families, so interning
/// turns every identifier copy into a pointer and makes AST/plan nodes
/// trivially destructible — the property the arena allocator relies on.
/// Interned storage is never freed; views stay valid for the process
/// lifetime, so they safely outlive any arena, record, or model.

#include <string_view>

namespace wmp::util {

/// \brief Thread-safe append-only intern pool.
class StringInterner {
 public:
  /// The process-wide pool.
  static StringInterner& Global();

  /// Returns the canonical copy of `s` (inserting it on first sight).
  std::string_view Intern(std::string_view s);

  /// Distinct strings held.
  size_t size() const;
  /// Bytes of interned character data.
  size_t bytes() const;

 private:
  StringInterner();
  ~StringInterner() = delete;  // never destroyed: views live forever

  struct Impl;
  Impl* impl_;
};

/// Shorthand for StringInterner::Global().Intern(s).
inline std::string_view Intern(std::string_view s) {
  return StringInterner::Global().Intern(s);
}

}  // namespace wmp::util

#endif  // WMP_UTIL_INTERNER_H_
