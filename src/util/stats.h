#ifndef WMP_UTIL_STATS_H_
#define WMP_UTIL_STATS_H_

/// \file stats.h
/// Tiny sample-statistics helpers shared by the serving benches and
/// wmpctl's serve-bench reporter, so the percentile convention (nearest
/// rank) lives in exactly one place.

#include <algorithm>
#include <cstddef>
#include <vector>

namespace wmp::util {

/// Nearest-rank percentile (`p` in [0, 1]) of a sample; sorts `*samples`
/// in place and returns 0 for an empty sample.
inline double PercentileInPlace(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  const size_t i =
      std::min(samples->size() - 1,
               static_cast<size_t>(p * static_cast<double>(samples->size())));
  return (*samples)[i];
}

}  // namespace wmp::util

#endif  // WMP_UTIL_STATS_H_
