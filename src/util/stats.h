#ifndef WMP_UTIL_STATS_H_
#define WMP_UTIL_STATS_H_

/// \file stats.h
/// Tiny sample-statistics helpers shared by the serving benches and
/// wmpctl's serve-bench reporter, so the percentile convention (nearest
/// rank) lives in exactly one place.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace wmp::util {

/// Nearest-rank percentile (`p` in [0, 1]) of a sample; sorts `*samples`
/// in place and returns 0 for an empty sample. Nearest rank is
/// ceil(p * n): the smallest sample such that at least p of the
/// distribution is at or below it — so p=0.99 of 100 samples is the 99th
/// smallest, not the maximum.
inline double PercentileInPlace(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0.0;
  std::sort(samples->begin(), samples->end());
  const double rank = std::ceil(p * static_cast<double>(samples->size()));
  const size_t i = rank < 1.0 ? 0
                              : std::min(samples->size() - 1,
                                         static_cast<size_t>(rank) - 1);
  return (*samples)[i];
}

}  // namespace wmp::util

#endif  // WMP_UTIL_STATS_H_
