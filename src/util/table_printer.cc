#include "util/table_printer.h"

#include <algorithm>
#include <iomanip>

#include "util/strings.h"

namespace wmp {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label,
                          const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(StrFormat("%.*f", precision, v));
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::ostream& os) const {
  size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<size_t> widths(ncols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << cell;
    }
    os << "\n";
  };
  if (!header_.empty()) {
    print_row(header_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) print_row(r);
}

}  // namespace wmp
