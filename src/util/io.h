#ifndef WMP_UTIL_IO_H_
#define WMP_UTIL_IO_H_

/// \file io.h
/// Binary serialization primitives.
///
/// Every trained model in `src/ml` serializes itself through `BinaryWriter`;
/// model size (Fig. 8 of the paper) is the byte count of that stream.
/// The format is little-endian, length-prefixed, with a per-stream magic and
/// version header written by the model wrappers.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace wmp {

/// \brief Appends primitive values to an in-memory byte buffer.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteU8(uint8_t v) { Append(&v, 1); }
  void WriteU16(uint16_t v) { Append(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { Append(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Append(&v, sizeof(v)); }
  void WriteI64(int64_t v) { Append(&v, sizeof(v)); }
  void WriteDouble(double v) { Append(&v, sizeof(v)); }
  /// Length-prefixed (u32) string.
  void WriteString(const std::string& s);
  /// Length-prefixed (u64) vector of doubles.
  void WriteDoubleVec(const std::vector<double>& v);
  /// Length-prefixed (u64) vector of 32-bit signed ints.
  void WriteIntVec(const std::vector<int>& v);

  const std::string& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }

  /// Writes the accumulated buffer to `path`, replacing any existing file.
  Status WriteToFile(const std::string& path) const;

 private:
  void Append(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }
  std::string buf_;
};

/// \brief Reads primitives back from a byte buffer produced by BinaryWriter.
///
/// All reads are bounds-checked and return `Status::OutOfRange` on truncated
/// input rather than reading past the end.
class BinaryReader {
 public:
  explicit BinaryReader(std::string buf) : buf_(std::move(buf)) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  /// Reads a u32 without consuming it (for dispatch on magic tags).
  Result<uint32_t> PeekU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<std::vector<double>> ReadDoubleVec();
  Result<std::vector<int>> ReadIntVec();

  /// Bytes not yet consumed.
  size_t remaining() const { return buf_.size() - pos_; }
  bool AtEnd() const { return pos_ == buf_.size(); }

  /// Loads a whole file into a reader.
  static Result<BinaryReader> FromFile(const std::string& path);

 private:
  Status Take(void* out, size_t n);
  std::string buf_;
  size_t pos_ = 0;
};

}  // namespace wmp

#endif  // WMP_UTIL_IO_H_
