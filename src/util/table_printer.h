#ifndef WMP_UTIL_TABLE_PRINTER_H_
#define WMP_UTIL_TABLE_PRINTER_H_

/// \file table_printer.h
/// Console table rendering for the benchmark harnesses. Every `bench/fig*`
/// binary prints the series a paper figure plots as an aligned text table.

#include <ostream>
#include <string>
#include <vector>

namespace wmp {

/// \brief Collects rows of string cells and prints them column-aligned.
class TablePrinter {
 public:
  /// \param title  heading printed above the table (may be empty).
  explicit TablePrinter(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` digits after the point.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 2);

  /// Renders the table.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wmp

#endif  // WMP_UTIL_TABLE_PRINTER_H_
