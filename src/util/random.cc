#include "util/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wmp {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = (~0ULL) - ((~0ULL) % range);
  uint64_t r;
  do {
    r = Next();
  } while (r > limit && limit != 0);
  return lo + static_cast<int64_t>(r % range);
}

double Rng::UniformDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_;
  }
  double u1, u2;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  u2 = UniformDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_ = true;
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0 || weights.empty()) {
    return weights.empty()
               ? 0
               : static_cast<size_t>(
                     UniformInt(0, static_cast<int64_t>(weights.size()) - 1));
  }
  double r = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += std::max(weights[i], 0.0);
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

ZipfDistribution::ZipfDistribution(uint64_t n, double theta)
    : n_(std::max<uint64_t>(n, 1)), theta_(std::max(theta, 0.0)) {
  cdf_.resize(n_);
  double acc = 0.0;
  for (uint64_t k = 1; k <= n_; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), theta_);
    cdf_[k - 1] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::Pmf(uint64_t k) const {
  if (k < 1 || k > n_) return 0.0;
  return Cdf(k) - Cdf(k - 1);
}

double ZipfDistribution::Cdf(uint64_t k) const {
  if (k == 0) return 0.0;
  if (k >= n_) return 1.0;
  return cdf_[k - 1];
}

}  // namespace wmp
