#include "plan/operator.h"

namespace wmp::plan {

const char* OperatorTypeName(OperatorType op) {
  switch (op) {
    case OperatorType::kTbScan:
      return "TBSCAN";
    case OperatorType::kIxScan:
      return "IXSCAN";
    case OperatorType::kFetch:
      return "FETCH";
    case OperatorType::kFilter:
      return "FILTER";
    case OperatorType::kNlJoin:
      return "NLJOIN";
    case OperatorType::kHsJoin:
      return "HSJOIN";
    case OperatorType::kMsJoin:
      return "MSJOIN";
    case OperatorType::kSort:
      return "SORT";
    case OperatorType::kGroupBy:
      return "GRPBY";
    case OperatorType::kTemp:
      return "TEMP";
    case OperatorType::kReturn:
      return "RETURN";
  }
  return "?";
}

Result<OperatorType> OperatorTypeFromName(const std::string& name) {
  for (int i = 0; i < kNumOperatorTypes; ++i) {
    const auto op = static_cast<OperatorType>(i);
    if (name == OperatorTypeName(op)) return op;
  }
  return Status::NotFound("unknown operator: " + name);
}

bool IsBlocking(OperatorType op) {
  return op == OperatorType::kSort || op == OperatorType::kTemp ||
         op == OperatorType::kGroupBy;
}

}  // namespace wmp::plan
