#include "plan/features.h"

#include <algorithm>

namespace wmp::plan {

namespace {

void AccumulateFeatures(const PlanNode& node, double* out) {
  const size_t t = static_cast<size_t>(node.op);
  out[2 * t] += 1.0;
  out[2 * t + 1] += node.output_card;
  for (const PlanNode* child : node.children) {
    AccumulateFeatures(*child, out);
  }
}

}  // namespace

void ExtractPlanFeaturesInto(const PlanNode& root, double* out) {
  std::fill(out, out + kPlanFeatureDim, 0.0);
  AccumulateFeatures(root, out);
}

std::vector<double> ExtractPlanFeatures(const PlanNode& root) {
  std::vector<double> features(kPlanFeatureDim, 0.0);
  ExtractPlanFeaturesInto(root, features.data());
  return features;
}

std::vector<std::string> PlanFeatureNames() {
  std::vector<std::string> names;
  names.reserve(kPlanFeatureDim);
  for (int t = 0; t < kNumOperatorTypes; ++t) {
    const std::string op = OperatorTypeName(static_cast<OperatorType>(t));
    names.push_back(op + ".count");
    names.push_back(op + ".card");
  }
  return names;
}

}  // namespace wmp::plan
