#include "plan/features.h"

namespace wmp::plan {

std::vector<double> ExtractPlanFeatures(const PlanNode& root) {
  std::vector<double> features(kPlanFeatureDim, 0.0);
  root.Visit([&](const PlanNode& node) {
    const size_t t = static_cast<size_t>(node.op);
    features[2 * t] += 1.0;
    features[2 * t + 1] += node.output_card;
  });
  return features;
}

std::vector<std::string> PlanFeatureNames() {
  std::vector<std::string> names;
  names.reserve(kPlanFeatureDim);
  for (int t = 0; t < kNumOperatorTypes; ++t) {
    const std::string op = OperatorTypeName(static_cast<OperatorType>(t));
    names.push_back(op + ".count");
    names.push_back(op + ".card");
  }
  return names;
}

}  // namespace wmp::plan
