#ifndef WMP_PLAN_FEATURES_H_
#define WMP_PLAN_FEATURES_H_

/// \file features.h
/// Plan featurization — step TR2 of the paper's pipeline.
///
/// Each query plan becomes a fixed-length vector with two slots per
/// operator type: the number of instances and the sum of their estimated
/// output cardinalities. Fig. 2's example (5 operator types, 10 features)
/// generalizes here to the full closed operator set (11 types, 22
/// features). Only *optimizer-estimated* cardinalities are read — at
/// inference time the true values do not exist yet.

#include <string>
#include <vector>

#include "plan/plan_node.h"

namespace wmp::plan {

/// Length of a plan feature vector: 2 * kNumOperatorTypes.
constexpr size_t kPlanFeatureDim = 2 * static_cast<size_t>(kNumOperatorTypes);

/// \brief Extracts the (count, total-cardinality) feature vector of a plan.
///
/// Layout: index 2*t is the instance count of operator type `t`, index
/// 2*t+1 the summed estimated output cardinality of those instances.
std::vector<double> ExtractPlanFeatures(const PlanNode& root);

/// Allocation-free form: zeroes `out[0..kPlanFeatureDim)` and accumulates
/// the features there by direct recursion (no std::function dispatch). The
/// batch featurizer writes straight into scratch-matrix rows with this.
void ExtractPlanFeaturesInto(const PlanNode& root, double* out);

/// Human-readable names for the feature slots ("TBSCAN.count",
/// "TBSCAN.card", ...), index-aligned with ExtractPlanFeatures.
std::vector<std::string> PlanFeatureNames();

}  // namespace wmp::plan

#endif  // WMP_PLAN_FEATURES_H_
