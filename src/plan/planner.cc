#include "plan/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "util/strings.h"

namespace wmp::plan {

namespace {

/// A base relation during join enumeration: its scan subplan plus both
/// cardinality tracks and the set of FROM aliases it covers.
///
/// Alias views point at interned AST identifiers; nodes live in the
/// caller's arena.
struct Rel {
  PlanNode* node = nullptr;
  double est_card = 0.0;
  double true_card = 0.0;
  double width = 0.0;
  std::set<std::string_view> aliases;
  /// Base-relation info for index-nested-loop decisions; null after a join.
  const catalog::TableDef* base_table = nullptr;
  std::string_view base_alias;
};

}  // namespace

Planner::Planner(const catalog::Catalog* cat, PlannerOptions options)
    : catalog_(cat), options_(options), optimizer_model_(cat), true_model_(cat) {}

Result<PlanTree> Planner::CreatePlan(const sql::Query& query) const {
  auto arena = std::make_unique<util::Arena>(kPlanArenaChunk);
  WMP_ASSIGN_OR_RETURN(PlanNode * root, CreatePlanInto(query, arena.get()));
  return PlanTree(std::move(arena), root);
}

Result<PlanNode*> Planner::CreatePlanInto(const sql::Query& query,
                                          util::Arena* arena) const {
  if (query.from.empty()) {
    return Status::InvalidArgument("query has no FROM clause");
  }

  // --- Resolve aliases to table definitions -------------------------------
  // string_view keys compare lexicographically exactly like std::string, so
  // iteration order — and every downstream FP accumulation order — is
  // unchanged by the arena conversion.
  std::map<std::string_view, const catalog::TableDef*> scope;  // alias -> table
  for (const sql::TableRef& ref : query.from) {
    WMP_ASSIGN_OR_RETURN(const catalog::TableDef* def,
                         catalog_->FindTable(ref.table));
    if (!scope.emplace(ref.effective_name(), def).second) {
      return Status::InvalidArgument("duplicate table alias: " +
                                     std::string(ref.effective_name()));
    }
  }
  // Resolves a column reference to its (alias, table); unqualified columns
  // match the unique FROM table containing them.
  auto resolve = [&](const sql::ColumnRef& col)
      -> Result<std::pair<std::string_view, const catalog::TableDef*>> {
    if (!col.table.empty()) {
      auto it = scope.find(col.table);
      if (it == scope.end()) {
        return Status::NotFound("unknown table alias: " +
                                std::string(col.table));
      }
      if (!it->second->HasColumn(col.column)) {
        return Status::NotFound("column " + std::string(col.column) +
                                " not in " + it->second->name());
      }
      return std::make_pair(it->first, it->second);
    }
    std::pair<std::string_view, const catalog::TableDef*> found{"", nullptr};
    for (const auto& [alias, def] : scope) {
      if (def->HasColumn(col.column)) {
        if (found.second != nullptr) {
          return Status::InvalidArgument("ambiguous column: " +
                                         std::string(col.column));
        }
        found = {alias, def};
      }
    }
    if (found.second == nullptr) {
      return Status::NotFound("column not found: " + std::string(col.column));
    }
    return found;
  };

  // --- Referenced columns per alias (projection width model) --------------
  std::map<std::string_view, std::set<std::string_view>> referenced;
  auto note_column = [&](const sql::ColumnRef& col) -> Status {
    WMP_ASSIGN_OR_RETURN(auto at, resolve(col));
    referenced[at.first].insert(col.column);
    return Status::OK();
  };
  for (const sql::SelectItem& item : query.select_list) {
    if (!item.is_star && !item.column.column.empty()) {
      WMP_RETURN_IF_ERROR(note_column(item.column));
    }
  }
  for (const sql::Predicate& p : query.where) {
    WMP_RETURN_IF_ERROR(note_column(p.lhs));
    if (p.kind == sql::Predicate::Kind::kJoin) {
      WMP_RETURN_IF_ERROR(note_column(p.rhs));
    }
  }
  for (const sql::ColumnRef& c : query.group_by) WMP_RETURN_IF_ERROR(note_column(c));
  for (const sql::ColumnRef& c : query.order_by) WMP_RETURN_IF_ERROR(note_column(c));
  const bool select_star = std::any_of(
      query.select_list.begin(), query.select_list.end(),
      [](const sql::SelectItem& s) { return s.is_star && s.agg == sql::AggFunc::kNone; });

  auto projected_width = [&](std::string_view alias,
                             const catalog::TableDef* def) {
    if (select_star) {
      return static_cast<double>(def->row_width()) +
             options_.tuple_overhead_bytes;
    }
    double w = options_.tuple_overhead_bytes;
    auto it = referenced.find(alias);
    if (it != referenced.end()) {
      for (std::string_view cname : it->second) {
        auto col = def->FindColumn(cname);
        if (col.ok()) w += (*col)->width();
      }
    }
    return w;
  };

  // --- Build base-relation scans ------------------------------------------
  std::vector<Rel> rels;
  for (const sql::TableRef& ref : query.from) {
    const std::string_view alias = ref.effective_name();
    const catalog::TableDef* def = scope[alias];
    const double rows = static_cast<double>(def->row_count());

    // Split local predicates into sargable ones (handled inside the scan)
    // and residual LIKEs (FILTER above it).
    std::vector<const sql::Predicate*> sargable, residual;
    for (const sql::Predicate& p : query.where) {
      if (p.kind != sql::Predicate::Kind::kComparison) continue;
      WMP_ASSIGN_OR_RETURN(auto at, resolve(p.lhs));
      if (at.first != alias) continue;
      (p.op == sql::CompareOp::kLike ? residual : sargable).push_back(&p);
    }
    WMP_ASSIGN_OR_RETURN(double est_sel,
                         optimizer_model_.ConjunctionSelectivity(sargable, *def));
    WMP_ASSIGN_OR_RETURN(double true_sel,
                         true_model_.ConjunctionSelectivity(sargable, *def));

    // Access path: an index scan pays off for selective indexed predicates.
    bool use_index = false;
    std::string_view index_column;
    if (est_sel < options_.index_selectivity_threshold) {
      for (const sql::Predicate* p : sargable) {
        if (def->HasIndexOn(p->lhs.column)) {
          use_index = true;
          index_column = p->lhs.column;
          break;
        }
      }
    }
    const double width = projected_width(alias, def);
    PlanNode* node = nullptr;
    if (use_index) {
      PlanNode* ix = arena->New<PlanNode>(arena, OperatorType::kIxScan);
      ix->table = arena->CopyString(def->name());
      ix->detail = arena->CopyString("index=" + std::string(index_column));
      ix->input_card = rows;
      ix->output_card = std::max(rows * est_sel, 1.0);
      ix->true_input_card = rows;
      ix->true_output_card = std::max(rows * true_sel, 1.0);
      ix->row_width = 12.0;  // RID + key
      PlanNode* fetch = arena->New<PlanNode>(arena, OperatorType::kFetch);
      fetch->table = ix->table;
      fetch->input_card = ix->output_card;
      fetch->output_card = ix->output_card;
      fetch->true_input_card = ix->true_output_card;
      fetch->true_output_card = ix->true_output_card;
      fetch->row_width = width;
      fetch->children.push_back(ix);
      node = fetch;
    } else {
      node = arena->New<PlanNode>(arena, OperatorType::kTbScan);
      node->table = arena->CopyString(def->name());
      node->input_card = rows;
      node->output_card = std::max(rows * est_sel, 1.0);
      node->true_input_card = rows;
      node->true_output_card = std::max(rows * true_sel, 1.0);
      node->row_width = width;
      if (!sargable.empty()) {
        node->detail =
            arena->CopyString(StrFormat("sargable=%zu", sargable.size()));
      }
    }
    if (!residual.empty()) {
      WMP_ASSIGN_OR_RETURN(double est_rsel, optimizer_model_.ConjunctionSelectivity(
                                                residual, *def));
      WMP_ASSIGN_OR_RETURN(double true_rsel,
                           true_model_.ConjunctionSelectivity(residual, *def));
      PlanNode* filter = arena->New<PlanNode>(arena, OperatorType::kFilter);
      filter->detail =
          arena->CopyString(StrFormat("residual=%zu", residual.size()));
      filter->input_card = node->output_card;
      filter->output_card = std::max(node->output_card * est_rsel, 1.0);
      filter->true_input_card = node->true_output_card;
      filter->true_output_card =
          std::max(node->true_output_card * true_rsel, 1.0);
      filter->row_width = width;
      filter->children.push_back(node);
      node = filter;
    }

    Rel rel;
    rel.est_card = node->output_card;
    rel.true_card = node->true_output_card;
    rel.width = width;
    rel.aliases.insert(alias);
    rel.base_table = def;
    rel.base_alias = alias;
    rel.node = node;
    rels.push_back(std::move(rel));
  }

  // --- Greedy join enumeration --------------------------------------------
  struct JoinEdge {
    const sql::Predicate* pred;
    std::string_view lhs_alias, rhs_alias;
    const catalog::TableDef* lhs_table;
    const catalog::TableDef* rhs_table;
  };
  std::vector<JoinEdge> edges;
  for (const sql::Predicate& p : query.where) {
    if (p.kind != sql::Predicate::Kind::kJoin) continue;
    WMP_ASSIGN_OR_RETURN(auto l, resolve(p.lhs));
    WMP_ASSIGN_OR_RETURN(auto r, resolve(p.rhs));
    edges.push_back({&p, l.first, r.first, l.second, r.second});
  }

  while (rels.size() > 1) {
    // Find the joinable pair with the smallest estimated output.
    double best_out = -1.0;
    size_t best_i = 0, best_j = 1;
    const JoinEdge* best_edge = nullptr;
    double best_sel_est = 1.0, best_sel_true = 1.0;
    for (size_t i = 0; i < rels.size(); ++i) {
      for (size_t j = i + 1; j < rels.size(); ++j) {
        for (const JoinEdge& e : edges) {
          const bool connects_ij = rels[i].aliases.count(e.lhs_alias) &&
                                   rels[j].aliases.count(e.rhs_alias);
          const bool connects_ji = rels[j].aliases.count(e.lhs_alias) &&
                                   rels[i].aliases.count(e.rhs_alias);
          if (!connects_ij && !connects_ji) continue;
          WMP_ASSIGN_OR_RETURN(
              double sel_est,
              optimizer_model_.JoinSelectivity(*e.pred, *e.lhs_table, *e.rhs_table));
          const double out = rels[i].est_card * rels[j].est_card * sel_est;
          if (best_out < 0.0 || out < best_out) {
            WMP_ASSIGN_OR_RETURN(
                double sel_true,
                true_model_.JoinSelectivity(*e.pred, *e.lhs_table, *e.rhs_table));
            best_out = out;
            best_i = i;
            best_j = j;
            best_edge = &e;
            best_sel_est = sel_est;
            best_sel_true = sel_true;
          }
        }
      }
    }
    if (best_edge == nullptr) {
      // No connecting predicate: cross join the two smallest relations.
      std::sort(rels.begin(), rels.end(), [](const Rel& a, const Rel& b) {
        return a.est_card < b.est_card;
      });
      best_i = 0;
      best_j = 1;
      best_sel_est = 1.0;
      best_sel_true = 1.0;
    }

    Rel& a = rels[best_i];
    Rel& b = rels[best_j];

    // A relation can serve as the inner of an index nested-loop join when
    // it is still a base table with an index on its join column.
    auto indexable_inner = [&](const Rel& rel) {
      if (best_edge == nullptr || rel.base_table == nullptr) return false;
      return (rel.aliases.count(best_edge->rhs_alias) &&
              rel.base_table->HasIndexOn(best_edge->pred->rhs.column)) ||
             (rel.aliases.count(best_edge->lhs_alias) &&
              rel.base_table->HasIndexOn(best_edge->pred->lhs.column));
    };

    OperatorType method;
    Rel* outer;
    Rel* inner;
    if (best_edge != nullptr && a.est_card <= options_.nlj_outer_card_max &&
        indexable_inner(b)) {
      method = OperatorType::kNlJoin;
      outer = &a;
      inner = &b;
    } else if (best_edge != nullptr &&
               b.est_card <= options_.nlj_outer_card_max &&
               indexable_inner(a)) {
      method = OperatorType::kNlJoin;
      outer = &b;
      inner = &a;
    } else {
      // Hash/merge join: probe with the larger side, build on the smaller.
      outer = a.est_card >= b.est_card ? &a : &b;
      inner = a.est_card >= b.est_card ? &b : &a;
      if (best_edge == nullptr) {
        method = OperatorType::kNlJoin;  // cross join
      } else if (inner->est_card * inner->width >
                 options_.hash_build_max_bytes) {
        method = OperatorType::kMsJoin;
      } else {
        method = OperatorType::kHsJoin;
      }
    }

    const double out_est =
        std::max(outer->est_card * inner->est_card * best_sel_est, 1.0);
    const double out_true =
        std::max(outer->true_card * inner->true_card * best_sel_true, 1.0);
    const double out_width = outer->width + inner->width;

    PlanNode* join = arena->New<PlanNode>(arena, method);
    join->detail = best_edge == nullptr
                       ? std::string_view("cross")
                       : arena->CopyString(best_edge->pred->lhs.ToString() +
                                           "=" +
                                           best_edge->pred->rhs.ToString());
    join->input_card = outer->est_card + inner->est_card;
    join->output_card = out_est;
    join->true_input_card = outer->true_card + inner->true_card;
    join->true_output_card = out_true;
    join->row_width = out_width;
    join->num_keys = 1;

    if (method == OperatorType::kMsJoin) {
      // Sort both inputs on the join key.
      auto make_sort = [&](Rel& side) {
        PlanNode* sort = arena->New<PlanNode>(arena, OperatorType::kSort);
        sort->num_keys = 1;
        sort->detail = "merge-join input";
        sort->input_card = side.est_card;
        sort->output_card = side.est_card;
        sort->true_input_card = side.true_card;
        sort->true_output_card = side.true_card;
        sort->row_width = side.width;
        sort->children.push_back(side.node);
        side.node = sort;
      };
      make_sort(*outer);
      make_sort(*inner);
    }
    // children[0] = outer/probe, children[1] = inner/build.
    join->children.push_back(outer->node);
    join->children.push_back(inner->node);

    Rel merged;
    merged.est_card = out_est;
    merged.true_card = out_true;
    merged.width = out_width;
    merged.aliases = a.aliases;
    merged.aliases.insert(b.aliases.begin(), b.aliases.end());
    merged.node = join;
    // base_table stays null: index-NLJ only applies to base relations.

    // Remove b (higher index first), then replace a.
    const size_t hi = std::max(best_i, best_j), lo = std::min(best_i, best_j);
    rels.erase(rels.begin() + static_cast<std::ptrdiff_t>(hi));
    rels[lo] = std::move(merged);
  }

  PlanNode* root = rels[0].node;

  // --- Aggregation / DISTINCT ---------------------------------------------
  std::vector<sql::ColumnRef> group_cols = query.group_by;
  const bool distinct_only = query.distinct && group_cols.empty();
  if (distinct_only) {
    for (const sql::SelectItem& item : query.select_list) {
      if (!item.is_star && item.agg == sql::AggFunc::kNone) {
        group_cols.push_back(item.column);
      }
    }
  }
  if (!group_cols.empty() || query.HasAggregation()) {
    std::vector<std::pair<const catalog::TableDef*, std::string_view>> gcols;
    double key_width = 0.0;
    for (const sql::ColumnRef& c : group_cols) {
      WMP_ASSIGN_OR_RETURN(auto at, resolve(c));
      gcols.push_back({at.second, c.column});
      auto col = at.second->FindColumn(c.column);
      if (col.ok()) key_width += (*col)->width();
    }
    int num_aggs = 0;
    for (const sql::SelectItem& item : query.select_list) {
      if (item.agg != sql::AggFunc::kNone) ++num_aggs;
    }
    double groups_est = 1.0, groups_true = 1.0;
    if (!gcols.empty()) {
      WMP_ASSIGN_OR_RETURN(groups_est,
                           optimizer_model_.GroupCount(gcols, root->output_card));
      WMP_ASSIGN_OR_RETURN(
          groups_true, true_model_.GroupCount(gcols, root->true_output_card));
    }
    const bool hash_mode = groups_est <= options_.hash_group_max;
    const double agg_width =
        key_width + 8.0 * num_aggs + options_.tuple_overhead_bytes;

    if (!hash_mode && !gcols.empty()) {
      // Sort-based aggregation needs its input ordered by the group keys.
      PlanNode* sort = arena->New<PlanNode>(arena, OperatorType::kSort);
      sort->num_keys = static_cast<int>(gcols.size());
      sort->detail = "group-by input";
      sort->input_card = root->output_card;
      sort->output_card = root->output_card;
      sort->true_input_card = root->true_output_card;
      sort->true_output_card = root->true_output_card;
      sort->row_width = root->row_width;
      sort->children.push_back(root);
      root = sort;
    }
    PlanNode* grpby = arena->New<PlanNode>(arena, OperatorType::kGroupBy);
    grpby->hash_mode = hash_mode && !gcols.empty();
    grpby->num_keys = static_cast<int>(gcols.size());
    grpby->detail = distinct_only
                        ? std::string_view("distinct")
                        : arena->CopyString(StrFormat("aggs=%d", num_aggs));
    grpby->input_card = root->output_card;
    grpby->output_card = std::max(1.0, std::min(groups_est, root->output_card));
    grpby->true_input_card = root->true_output_card;
    grpby->true_output_card =
        std::max(1.0, std::min(groups_true, root->true_output_card));
    grpby->row_width = agg_width;
    grpby->children.push_back(root);
    root = grpby;
  }

  // --- ORDER BY -------------------------------------------------------------
  if (!query.order_by.empty()) {
    PlanNode* sort = arena->New<PlanNode>(arena, OperatorType::kSort);
    sort->num_keys = static_cast<int>(query.order_by.size());
    sort->detail = "order-by";
    sort->input_card = root->output_card;
    sort->output_card = root->output_card;
    sort->true_input_card = root->true_output_card;
    sort->true_output_card = root->true_output_card;
    sort->row_width = root->row_width;
    sort->children.push_back(root);
    root = sort;
  }

  // --- RETURN ----------------------------------------------------------------
  PlanNode* ret = arena->New<PlanNode>(arena, OperatorType::kReturn);
  ret->input_card = root->output_card;
  ret->true_input_card = root->true_output_card;
  const double limit =
      query.limit >= 0 ? static_cast<double>(query.limit)
                       : std::numeric_limits<double>::max();
  ret->output_card = std::max(1.0, std::min(root->output_card, limit));
  ret->true_output_card =
      std::max(1.0, std::min(root->true_output_card, limit));
  ret->row_width = root->row_width;
  ret->children.push_back(root);

  if (!options_.annotate_true_cardinalities) {
    ret->VisitMutable([](PlanNode* n) {
      n->true_input_card = -1.0;
      n->true_output_card = -1.0;
    });
  }
  return ret;
}

}  // namespace wmp::plan
