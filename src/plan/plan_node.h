#ifndef WMP_PLAN_PLAN_NODE_H_
#define WMP_PLAN_PLAN_NODE_H_

/// \file plan_node.h
/// Physical plan tree. Each node carries two cardinality tracks:
///
///  * `input_card` / `output_card` — the optimizer's estimates, derived
///    under uniformity and independence. Plan featurization and the DBMS
///    heuristic memory estimator read only these.
///  * `true_input_card` / `true_output_card` — the ground-truth values the
///    execution simulator fills in from the synthetic data model. They
///    stand in for "what actually happened at runtime" and drive the
///    actual-memory label `m`.
///
/// Nodes are arena-allocated (util/arena.h): the planner and EXPLAIN parser
/// bump-allocate every node and string into one arena per tree (or per
/// batch, on the serving cold path), so building and dropping a plan does
/// zero per-node heap traffic. A PlanNode is trivially destructible; its
/// `table`/`detail` views point into the owning arena or static storage.
/// PlanTree couples a root with the arena that owns it.

#include <cstddef>
#include <functional>
#include <memory>
#include <string_view>

#include "plan/operator.h"
#include "util/arena.h"

namespace wmp::plan {

/// \brief One operator instance in a physical plan.
struct PlanNode {
  OperatorType op = OperatorType::kReturn;
  util::ArenaVec<PlanNode*> children;

  /// Optimizer-estimated rows flowing in (sum over children's output) and
  /// out of this operator.
  double input_card = 0.0;
  double output_card = 0.0;
  /// Ground-truth rows (filled by engine::Simulator; -1 = not yet set).
  double true_input_card = -1.0;
  double true_output_card = -1.0;

  /// Average output row width in bytes.
  double row_width = 8.0;
  /// Base table name for scan operators; empty otherwise. Points into the
  /// owning arena (or static storage).
  std::string_view table;
  /// Free-form annotation (join columns, sort keys) for EXPLAIN output.
  std::string_view detail;
  /// Sort keys / grouping columns count.
  int num_keys = 0;
  /// GROUP BY only: hash aggregation (true) vs. streaming over sorted
  /// input (false).
  bool hash_mode = false;

  /// Nodes always live in an arena; children grow there too.
  explicit PlanNode(util::Arena* arena) : children(arena) {}
  PlanNode(util::Arena* arena, OperatorType type)
      : op(type), children(arena) {}

  /// Deep copy into `arena` (strings are copied there as well).
  PlanNode* Clone(util::Arena* arena) const;

  /// Number of nodes in this subtree.
  size_t TreeSize() const;
  /// Longest root-to-leaf path length (single node = 1).
  size_t Depth() const;

  /// Pre-order traversal.
  void Visit(const std::function<void(const PlanNode&)>& fn) const;
  void VisitMutable(const std::function<void(PlanNode*)>& fn);
};

static_assert(std::is_trivially_destructible_v<PlanNode>,
              "PlanNode must stay arena-compatible");

/// \brief Owning handle for a plan: the root plus the arena holding every
/// node. Move-only, with a unique_ptr-flavored API so call sites read the
/// same as the pre-arena `std::unique_ptr<PlanNode>`.
class PlanTree {
 public:
  PlanTree() = default;
  PlanTree(std::nullptr_t) {}  // NOLINT: mirror unique_ptr's null init
  PlanTree(std::unique_ptr<util::Arena> arena, PlanNode* root)
      : arena_(std::move(arena)), root_(root) {}

  PlanTree(PlanTree&& o) noexcept
      : arena_(std::move(o.arena_)), root_(o.root_) {
    o.root_ = nullptr;
  }
  PlanTree& operator=(PlanTree&& o) noexcept {
    arena_ = std::move(o.arena_);
    root_ = o.root_;
    o.root_ = nullptr;
    return *this;
  }
  PlanTree(const PlanTree&) = delete;
  PlanTree& operator=(const PlanTree&) = delete;

  PlanNode* get() const { return root_; }
  PlanNode& operator*() const { return *root_; }
  PlanNode* operator->() const { return root_; }
  explicit operator bool() const { return root_ != nullptr; }
  friend bool operator==(const PlanTree& t, std::nullptr_t) {
    return t.root_ == nullptr;
  }

  /// Deep copy into a fresh arena.
  PlanTree Clone() const;

  /// The arena owning this tree's nodes (null for an empty tree).
  util::Arena* arena() const { return arena_.get(); }

  void reset() {
    root_ = nullptr;
    arena_.reset();
  }

 private:
  std::unique_ptr<util::Arena> arena_;
  PlanNode* root_ = nullptr;
};

/// Default first-chunk size for a single tree's arena: a typical annotated
/// plan (10-25 nodes + detail strings) fits in one chunk.
inline constexpr size_t kPlanArenaChunk = 4 << 10;

/// Wraps a root built in `arena` into an owning tree.
inline PlanTree OwnTree(std::unique_ptr<util::Arena> arena, PlanNode* root) {
  return PlanTree(std::move(arena), root);
}

/// Convenience builder for tests and the planner.
PlanNode* MakeNode(util::Arena* arena, OperatorType op,
                   std::initializer_list<PlanNode*> children = {});

}  // namespace wmp::plan

#endif  // WMP_PLAN_PLAN_NODE_H_
