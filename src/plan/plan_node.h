#ifndef WMP_PLAN_PLAN_NODE_H_
#define WMP_PLAN_PLAN_NODE_H_

/// \file plan_node.h
/// Physical plan tree. Each node carries two cardinality tracks:
///
///  * `input_card` / `output_card` — the optimizer's estimates, derived
///    under uniformity and independence. Plan featurization and the DBMS
///    heuristic memory estimator read only these.
///  * `true_input_card` / `true_output_card` — the ground-truth values the
///    execution simulator fills in from the synthetic data model. They
///    stand in for "what actually happened at runtime" and drive the
///    actual-memory label `m`.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "plan/operator.h"

namespace wmp::plan {

/// \brief One operator instance in a physical plan.
struct PlanNode {
  OperatorType op = OperatorType::kReturn;
  std::vector<std::unique_ptr<PlanNode>> children;

  /// Optimizer-estimated rows flowing in (sum over children's output) and
  /// out of this operator.
  double input_card = 0.0;
  double output_card = 0.0;
  /// Ground-truth rows (filled by engine::Simulator; -1 = not yet set).
  double true_input_card = -1.0;
  double true_output_card = -1.0;

  /// Average output row width in bytes.
  double row_width = 8.0;
  /// Base table name for scan operators; empty otherwise.
  std::string table;
  /// Free-form annotation (join columns, sort keys) for EXPLAIN output.
  std::string detail;
  /// Sort keys / grouping columns count.
  int num_keys = 0;
  /// GROUP BY only: hash aggregation (true) vs. streaming over sorted
  /// input (false).
  bool hash_mode = false;

  PlanNode() = default;
  explicit PlanNode(OperatorType type) : op(type) {}

  /// Deep copy.
  std::unique_ptr<PlanNode> Clone() const;

  /// Number of nodes in this subtree.
  size_t TreeSize() const;
  /// Longest root-to-leaf path length (single node = 1).
  size_t Depth() const;

  /// Pre-order traversal.
  void Visit(const std::function<void(const PlanNode&)>& fn) const;
  void VisitMutable(const std::function<void(PlanNode*)>& fn);
};

/// Convenience builder for tests and the planner.
std::unique_ptr<PlanNode> MakeNode(OperatorType op,
                                   std::vector<std::unique_ptr<PlanNode>> children = {});

}  // namespace wmp::plan

#endif  // WMP_PLAN_PLAN_NODE_H_
