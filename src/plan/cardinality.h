#ifndef WMP_PLAN_CARDINALITY_H_
#define WMP_PLAN_CARDINALITY_H_

/// \file cardinality.h
/// Two cardinality models with one interface:
///
///  * `OptimizerCardinalityModel` — the System-R-style estimator every
///    textbook DBMS ships: uniform value frequencies, independent
///    predicates, containment join estimation. This is what the *planner*
///    and the DBMS heuristic memory estimator believe.
///  * `TrueCardinalityModel` — the ground-truth oracle. It honors the
///    synthetic data model (Zipf value skew, declared column correlations,
///    foreign-key fanout skew) and the generator-attached
///    `Predicate::true_selectivity` hints. It stands in for actually
///    executing the query.
///
/// The *gap* between these two models is the error source the paper
/// attributes to the state of practice (§I: "uniformity and independence
/// of the underlying data").

#include <map>
#include <vector>

#include "catalog/catalog.h"
#include "sql/ast.h"
#include "util/status.h"

namespace wmp::plan {

/// \brief Closed-form approximation of the generalized harmonic number
/// `H_n(theta) = sum_{k=1..n} k^-theta` (integral method; exact enough for
/// selectivity math).
double HarmonicApprox(double n, double theta);

/// \name HarmonicApprox fast path (per-theta prefix tables).
///
/// The exact prefix of H_n(theta) is O(min(n, 2048)) pow() calls, and the
/// cold planning path evaluates it once per range predicate with `n`
/// derived from the predicate's literal — a different key per query, so a
/// per-(n, theta) memo thrashes at corpus scale. The fast path instead
/// builds one cumulative prefix-sum table per distinct theta (a catalog
/// has a handful) in the same left-to-right accumulation order, making
/// every call a table lookup plus the integral tail — bitwise equal to
/// the direct summation. The toggle exists for benchmarks that reproduce
/// the pre-table cost model as their baseline; it never changes values.
/// @{
void SetHarmonicTableCache(bool on);
bool HarmonicTableCache();
/// @}

/// CDF of Zipf(n, theta) at rank `k` (ranks ordered by frequency).
double ZipfCdfApprox(double k, double n, double theta);

/// Collision probability `sum_k pmf(k)^2` of Zipf(n, theta): the expected
/// selectivity of an equality predicate whose constant is drawn
/// data-distributedly.
double ZipfCollisionProb(double n, double theta);

/// \brief Shared interface so the planner and the simulator walk plans with
/// interchangeable models.
class CardinalityModel {
 public:
  explicit CardinalityModel(const catalog::Catalog* cat) : catalog_(cat) {}
  virtual ~CardinalityModel() = default;

  /// Selectivity in [0,1] of one comparison predicate against its table.
  virtual Result<double> PredicateSelectivity(
      const sql::Predicate& pred, const catalog::TableDef& table) const = 0;

  /// Combined selectivity of a conjunction of local predicates.
  virtual Result<double> ConjunctionSelectivity(
      const std::vector<const sql::Predicate*>& preds,
      const catalog::TableDef& table) const;

  /// Selectivity of an equi-join between `left.col` and `right.col`.
  virtual Result<double> JoinSelectivity(const sql::Predicate& join_pred,
                                         const catalog::TableDef& left,
                                         const catalog::TableDef& right) const = 0;

  /// Number of output groups of a GROUP BY over `columns` on `input_card`
  /// incoming rows.
  virtual Result<double> GroupCount(
      const std::vector<std::pair<const catalog::TableDef*, std::string_view>>& columns,
      double input_card) const = 0;

 protected:
  const catalog::Catalog* catalog_;
};

/// \brief Uniformity + independence estimator (the optimizer's view).
class OptimizerCardinalityModel : public CardinalityModel {
 public:
  using CardinalityModel::CardinalityModel;

  Result<double> PredicateSelectivity(
      const sql::Predicate& pred, const catalog::TableDef& table) const override;
  Result<double> JoinSelectivity(const sql::Predicate& join_pred,
                                 const catalog::TableDef& left,
                                 const catalog::TableDef& right) const override;
  Result<double> GroupCount(
      const std::vector<std::pair<const catalog::TableDef*, std::string_view>>& columns,
      double input_card) const override;

  /// Default selectivity for LIKE predicates (classic System-R magic).
  static constexpr double kLikeSelectivity = 0.1;
};

/// \brief Ground-truth oracle honoring skew, correlation, and fanout.
class TrueCardinalityModel : public CardinalityModel {
 public:
  using CardinalityModel::CardinalityModel;

  Result<double> PredicateSelectivity(
      const sql::Predicate& pred, const catalog::TableDef& table) const override;
  /// Applies exponential-backoff correlation between predicate pairs that
  /// the table declares correlated: `s_combined = s1 * s2^(1 - strength)`.
  Result<double> ConjunctionSelectivity(
      const std::vector<const sql::Predicate*>& preds,
      const catalog::TableDef& table) const override;
  Result<double> JoinSelectivity(const sql::Predicate& join_pred,
                                 const catalog::TableDef& left,
                                 const catalog::TableDef& right) const override;
  Result<double> GroupCount(
      const std::vector<std::pair<const catalog::TableDef*, std::string_view>>& columns,
      double input_card) const override;
};

}  // namespace wmp::plan

#endif  // WMP_PLAN_CARDINALITY_H_
