#ifndef WMP_PLAN_PLANNER_H_
#define WMP_PLAN_PLANNER_H_

/// \file planner.h
/// Rule-based physical planner: SQL AST + catalog -> operator tree.
///
/// Access paths, join order, and join/aggregation methods are chosen with
/// the optimizer cardinality model (uniformity + independence), mirroring a
/// System-R-style commercial optimizer. Every node is annotated with both
/// the optimizer's estimates and — when an oracle is enabled — the
/// ground-truth cardinalities from the synthetic data model, which the
/// execution-memory simulator consumes downstream.

#include <memory>

#include "catalog/catalog.h"
#include "plan/cardinality.h"
#include "plan/plan_node.h"
#include "sql/ast.h"
#include "util/status.h"

namespace wmp::plan {

/// Planner heuristics thresholds.
struct PlannerOptions {
  /// Use an index scan when the combined local selectivity is below this.
  double index_selectivity_threshold = 0.05;
  /// Nested-loop join is considered when the outer's estimated cardinality
  /// is below this and the inner has an index on the join column.
  double nlj_outer_card_max = 5000.0;
  /// Switch from hash join to sort-merge when the estimated build side
  /// exceeds this many bytes (models a bounded join heap).
  double hash_build_max_bytes = 512.0 * 1024 * 1024;
  /// Hash aggregation unless the estimated group count exceeds this.
  double hash_group_max = 5e7;
  /// Per-tuple overhead added to projected row widths.
  double tuple_overhead_bytes = 8.0;
  /// Also annotate true cardinalities with TrueCardinalityModel.
  bool annotate_true_cardinalities = true;
};

/// \brief Translates queries into annotated physical plans.
class Planner {
 public:
  /// \param cat must outlive the planner.
  explicit Planner(const catalog::Catalog* cat, PlannerOptions options = {});

  /// Builds the physical plan for `query`. Fails with NotFound for unknown
  /// tables/columns and InvalidArgument for unresolvable references.
  Result<PlanTree> CreatePlan(const sql::Query& query) const;

  /// Batch form: builds the plan into a caller-owned arena (nodes + strings
  /// live there; the caller resets the arena between batches). The serving
  /// cold path plans every query of a batch into one warmed arena with zero
  /// per-node heap traffic.
  Result<PlanNode*> CreatePlanInto(const sql::Query& query,
                                   util::Arena* arena) const;

  const PlannerOptions& options() const { return options_; }

 private:
  const catalog::Catalog* catalog_;
  PlannerOptions options_;
  OptimizerCardinalityModel optimizer_model_;
  TrueCardinalityModel true_model_;
};

}  // namespace wmp::plan

#endif  // WMP_PLAN_PLANNER_H_
