#include "plan/plan_parser.h"

#include <cstdlib>
#include <memory>
#include <vector>

#include "util/strings.h"

namespace wmp::plan {

namespace {

// One parsed line: indentation depth plus the node's fields.
struct ParsedLine {
  int depth = 0;
  PlanNode* node = nullptr;
};

Result<ParsedLine> ParseLine(const std::string& line, size_t line_no,
                             util::Arena* arena) {
  ParsedLine out;
  size_t indent = 0;
  while (indent < line.size() && line[indent] == ' ') ++indent;
  if (indent % 2 != 0) {
    return Status::InvalidArgument(
        StrFormat("line %zu: odd indentation %zu", line_no, indent));
  }
  out.depth = static_cast<int>(indent / 2);

  std::string_view rest = std::string_view(line).substr(indent);
  // Operator name runs until '(' or whitespace.
  size_t name_end = 0;
  while (name_end < rest.size() && rest[name_end] != '(' &&
         rest[name_end] != ' ') {
    ++name_end;
  }
  const std::string op_name(rest.substr(0, name_end));
  WMP_ASSIGN_OR_RETURN(OperatorType op, OperatorTypeFromName(op_name));
  out.node = arena->New<PlanNode>(arena, op);
  rest.remove_prefix(name_end);

  if (!rest.empty() && rest.front() == '(') {
    const size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("line %zu: unterminated table name", line_no));
    }
    out.node->table = arena->CopyString(rest.substr(1, close - 1));
    rest.remove_prefix(close + 1);
  }

  // Remaining fields are space-separated key=value pairs, plus the bare
  // "hash" flag and a quoted detail.
  while (!rest.empty()) {
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    if (rest.empty()) break;
    if (StartsWith(rest, "hash")) {
      out.node->hash_mode = true;
      rest.remove_prefix(4);
      continue;
    }
    if (StartsWith(rest, "detail=\"")) {
      rest.remove_prefix(8);
      const size_t close = rest.find('"');
      if (close == std::string_view::npos) {
        return Status::InvalidArgument(
            StrFormat("line %zu: unterminated detail", line_no));
      }
      out.node->detail = arena->CopyString(rest.substr(0, close));
      rest.remove_prefix(close + 1);
      continue;
    }
    const size_t eq = rest.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(
          StrFormat("line %zu: malformed field near '%s'", line_no,
                    std::string(rest.substr(0, 16)).c_str()));
    }
    const std::string key(rest.substr(0, eq));
    rest.remove_prefix(eq + 1);
    size_t val_end = rest.find(' ');
    if (val_end == std::string_view::npos) val_end = rest.size();
    const std::string value(rest.substr(0, val_end));
    rest.remove_prefix(val_end);
    char* endp = nullptr;
    const double v = std::strtod(value.c_str(), &endp);
    if (endp == value.c_str()) {
      return Status::InvalidArgument(
          StrFormat("line %zu: non-numeric value for %s", line_no, key.c_str()));
    }
    if (key == "in") {
      out.node->input_card = v;
    } else if (key == "out") {
      out.node->output_card = v;
    } else if (key == "tin") {
      out.node->true_input_card = v;
    } else if (key == "tout") {
      out.node->true_output_card = v;
    } else if (key == "width") {
      out.node->row_width = v;
    } else if (key == "keys") {
      out.node->num_keys = static_cast<int>(v);
    } else {
      return Status::InvalidArgument(
          StrFormat("line %zu: unknown field '%s'", line_no, key.c_str()));
    }
  }
  return out;
}

}  // namespace

Result<PlanNode*> ParseExplainInto(const std::string& text,
                                   util::Arena* arena) {
  std::vector<std::string> lines = Split(text, '\n');
  // Stack of (depth, node*) for parent attachment.
  PlanNode* root = nullptr;
  std::vector<std::pair<int, PlanNode*>> stack;
  size_t line_no = 0;
  for (const std::string& raw : lines) {
    ++line_no;
    if (Trim(raw).empty()) continue;
    WMP_ASSIGN_OR_RETURN(ParsedLine parsed, ParseLine(raw, line_no, arena));
    if (root == nullptr) {
      if (parsed.depth != 0) {
        return Status::InvalidArgument("first plan line must not be indented");
      }
      root = parsed.node;
      stack.push_back({0, root});
      continue;
    }
    // Pop to the parent level.
    while (!stack.empty() && stack.back().first >= parsed.depth) {
      stack.pop_back();
    }
    if (stack.empty() || stack.back().first != parsed.depth - 1) {
      return Status::InvalidArgument(
          StrFormat("line %zu: indentation skips a level", line_no));
    }
    PlanNode* parent = stack.back().second;
    parent->children.push_back(parsed.node);
    stack.push_back({parsed.depth, parsed.node});
  }
  if (root == nullptr) {
    return Status::InvalidArgument("empty plan text");
  }
  return root;
}

Result<PlanTree> ParseExplain(const std::string& text) {
  auto arena = std::make_unique<util::Arena>(kPlanArenaChunk);
  WMP_ASSIGN_OR_RETURN(PlanNode * root, ParseExplainInto(text, arena.get()));
  return PlanTree(std::move(arena), root);
}

}  // namespace wmp::plan
