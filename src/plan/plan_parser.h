#ifndef WMP_PLAN_PLAN_PARSER_H_
#define WMP_PLAN_PLAN_PARSER_H_

/// \file plan_parser.h
/// Parses EXPLAIN text (see explain.h) back into a PlanNode tree.
///
/// This is the ingestion path for real deployments: a DBA dumps plans from
/// the DBMS query log, and the LearnedWMP training pipeline featurizes them
/// without re-planning. `ParseExplain(Explain(p))` reconstructs `p` exactly
/// (all annotated fields).

#include <memory>
#include <string>

#include "plan/plan_node.h"
#include "util/status.h"

namespace wmp::plan {

/// \brief Parses one EXPLAIN plan. Fails with InvalidArgument on malformed
/// lines, bad indentation (a child more than one level deeper than its
/// parent), unknown operators, or empty input.
Result<std::unique_ptr<PlanNode>> ParseExplain(const std::string& text);

}  // namespace wmp::plan

#endif  // WMP_PLAN_PLAN_PARSER_H_
