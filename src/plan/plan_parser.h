#ifndef WMP_PLAN_PLAN_PARSER_H_
#define WMP_PLAN_PLAN_PARSER_H_

/// \file plan_parser.h
/// Parses EXPLAIN text (see explain.h) back into a PlanNode tree.
///
/// This is the ingestion path for real deployments: a DBA dumps plans from
/// the DBMS query log, and the LearnedWMP training pipeline featurizes them
/// without re-planning. `ParseExplain(Explain(p))` reconstructs `p` exactly
/// (all annotated fields).

#include <string>

#include "plan/plan_node.h"
#include "util/status.h"

namespace wmp::plan {

/// \brief Parses one EXPLAIN plan. Fails with InvalidArgument on malformed
/// lines, bad indentation (a child more than one level deeper than its
/// parent), unknown operators, or empty input. The returned tree owns its
/// arena.
Result<PlanTree> ParseExplain(const std::string& text);

/// Batch form: parses into a caller-owned arena (nodes and strings live
/// there; reset the arena between batches to reuse its chunks).
Result<PlanNode*> ParseExplainInto(const std::string& text,
                                   util::Arena* arena);

}  // namespace wmp::plan

#endif  // WMP_PLAN_PLAN_PARSER_H_
