#include "plan/cardinality.h"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace wmp::plan {

namespace {

// Exact-summation limit: beyond it the midpoint-corrected integral tail
// takes over. Selectivity math needs ~3 significant digits.
constexpr double kExactLimit = 2048.0;

// Integral tail of H_n(theta) past the exact prefix (n > kExactLimit).
double HarmonicTail(double n, double theta) {
  if (std::fabs(theta - 1.0) < 1e-9) {
    return std::log((n + 0.5) / (kExactLimit + 0.5));
  }
  return (std::pow(n + 0.5, 1.0 - theta) -
          std::pow(kExactLimit + 0.5, 1.0 - theta)) /
         (1.0 - theta);
}

double HarmonicUncached(double n, double theta) {
  const double exact_n = std::min(n, kExactLimit);
  double sum = 0.0;
  for (double k = 1.0; k <= exact_n; k += 1.0) sum += std::pow(k, -theta);
  if (n <= kExactLimit) return sum;
  return sum + HarmonicTail(n, theta);
}

std::atomic<bool> g_harmonic_tables{true};

// Cumulative prefix sums of the exact summation for one theta, accumulated
// in the same left-to-right order as HarmonicUncached's loop so that
// prefix[m] is bitwise the sum after m iterations.
const std::vector<double>& ThetaPrefixTable(double theta) {
  // A catalog carries a handful of distinct skews (plus their doubles from
  // ZipfCollisionProb); wholesale drop on adversarial streams, as with any
  // bounded memo. Thread-local: no sharing, no locks.
  constexpr size_t kMaxTables = 64;
  struct ThetaTable {
    double theta;
    std::vector<double> prefix;
  };
  thread_local std::vector<ThetaTable> tables;
  for (const ThetaTable& t : tables) {
    if (t.theta == theta) return t.prefix;
  }
  if (tables.size() >= kMaxTables) tables.clear();
  ThetaTable t;
  t.theta = theta;
  t.prefix.resize(static_cast<size_t>(kExactLimit) + 1);
  t.prefix[0] = 0.0;
  double sum = 0.0;
  for (size_t k = 1; k < t.prefix.size(); ++k) {
    sum += std::pow(static_cast<double>(k), -theta);
    t.prefix[k] = sum;
  }
  tables.push_back(std::move(t));
  return tables.back().prefix;
}

}  // namespace

void SetHarmonicTableCache(bool on) {
  g_harmonic_tables.store(on, std::memory_order_relaxed);
}

bool HarmonicTableCache() {
  return g_harmonic_tables.load(std::memory_order_relaxed);
}

double HarmonicApprox(double n, double theta) {
  if (n < 1.0) return 0.0;
  if (theta == 0.0) return n;
  if (g_harmonic_tables.load(std::memory_order_relaxed)) {
    // prefix[floor(min(n, limit))] is exactly the sum HarmonicUncached's
    // `k <= exact_n` loop accumulates, because k only takes integer values.
    const std::vector<double>& prefix = ThetaPrefixTable(theta);
    const double sum = prefix[static_cast<size_t>(std::min(n, kExactLimit))];
    if (n <= kExactLimit) return sum;
    return sum + HarmonicTail(n, theta);
  }
  // Reference (pre-table) path: per-(n, theta) memo in front of the exact
  // summation. Range predicates derive `n` from their literals, so at
  // corpus scale the keys are near-unique and most calls pay the full
  // O(min(n, 2048)) loop — the cost model benchmarks compare against.
  constexpr size_t kMaxEntries = 4096;
  thread_local std::map<std::pair<double, double>, double> cache;
  const auto key = std::make_pair(n, theta);
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  const double value = HarmonicUncached(n, theta);
  if (cache.size() >= kMaxEntries) cache.clear();
  cache.emplace(key, value);
  return value;
}

double ZipfCdfApprox(double k, double n, double theta) {
  if (k <= 0.0) return 0.0;
  if (k >= n) return 1.0;
  return HarmonicApprox(k, theta) / HarmonicApprox(n, theta);
}

double ZipfCollisionProb(double n, double theta) {
  if (n < 1.0) return 1.0;
  const double h = HarmonicApprox(n, theta);
  return HarmonicApprox(n, 2.0 * theta) / (h * h);
}

namespace {

// Clamps a selectivity into [1e-9, 1].
double ClampSel(double s) { return std::clamp(s, 1e-9, 1.0); }

// Fraction of the [min,max] domain a range predicate covers, assuming
// uniform spread of values over the domain (both models use this geometric
// fraction; they differ in how they map it to a *row* fraction).
double DomainFraction(const sql::Predicate& pred,
                      const catalog::ColumnStats& stats) {
  const double lo = stats.min_value, hi = stats.max_value;
  const double span = std::max(hi - lo, 1e-12);
  auto frac_below = [&](double v) {
    return std::clamp((v - lo) / span, 0.0, 1.0);
  };
  switch (pred.op) {
    case sql::CompareOp::kLt:
    case sql::CompareOp::kLe:
      return frac_below(pred.values[0].number);
    case sql::CompareOp::kGt:
    case sql::CompareOp::kGe:
      return 1.0 - frac_below(pred.values[0].number);
    case sql::CompareOp::kBetween: {
      const double a = frac_below(pred.values[0].number);
      const double b = frac_below(pred.values[1].number);
      return std::max(b - a, 0.0);
    }
    default:
      return 1.0;
  }
}

}  // namespace

Result<double> CardinalityModel::ConjunctionSelectivity(
    const std::vector<const sql::Predicate*>& preds,
    const catalog::TableDef& table) const {
  double sel = 1.0;
  for (const sql::Predicate* p : preds) {
    WMP_ASSIGN_OR_RETURN(double s, PredicateSelectivity(*p, table));
    sel *= s;
  }
  return ClampSel(sel);
}

// ---------------------------------------------------------------------------
// Optimizer model: uniformity + independence.
// ---------------------------------------------------------------------------

Result<double> OptimizerCardinalityModel::PredicateSelectivity(
    const sql::Predicate& pred, const catalog::TableDef& table) const {
  if (pred.kind != sql::Predicate::Kind::kComparison) {
    return Status::InvalidArgument("join predicate passed as comparison");
  }
  WMP_ASSIGN_OR_RETURN(const catalog::Column* col,
                       table.FindColumn(pred.lhs.column));
  const catalog::ColumnStats& stats = col->stats();
  const double ndv = std::max<double>(static_cast<double>(stats.ndv), 1.0);
  switch (pred.op) {
    case sql::CompareOp::kEq:
      return ClampSel(1.0 / ndv);
    case sql::CompareOp::kNe:
      return ClampSel(1.0 - 1.0 / ndv);
    case sql::CompareOp::kIn:
      return ClampSel(static_cast<double>(pred.values.size()) / ndv);
    case sql::CompareOp::kLike:
      return kLikeSelectivity;
    case sql::CompareOp::kLt:
    case sql::CompareOp::kLe:
    case sql::CompareOp::kGt:
    case sql::CompareOp::kGe:
    case sql::CompareOp::kBetween:
      return ClampSel(DomainFraction(pred, stats));
  }
  return Status::Internal("unhandled comparison op");
}

Result<double> OptimizerCardinalityModel::JoinSelectivity(
    const sql::Predicate& join_pred, const catalog::TableDef& left,
    const catalog::TableDef& right) const {
  if (join_pred.kind != sql::Predicate::Kind::kJoin) {
    return Status::InvalidArgument("comparison predicate passed as join");
  }
  WMP_ASSIGN_OR_RETURN(const catalog::Column* lcol,
                       left.FindColumn(join_pred.lhs.column));
  WMP_ASSIGN_OR_RETURN(const catalog::Column* rcol,
                       right.FindColumn(join_pred.rhs.column));
  const double ndv_max =
      std::max<double>(1.0, static_cast<double>(std::max(
                                lcol->stats().ndv, rcol->stats().ndv)));
  return ClampSel(1.0 / ndv_max);
}

Result<double> OptimizerCardinalityModel::GroupCount(
    const std::vector<std::pair<const catalog::TableDef*, std::string_view>>& columns,
    double input_card) const {
  double groups = 1.0;
  for (const auto& [table, column] : columns) {
    WMP_ASSIGN_OR_RETURN(const catalog::Column* col, table->FindColumn(column));
    groups *= std::max<double>(static_cast<double>(col->stats().ndv), 1.0);
  }
  return std::max(1.0, std::min(groups, input_card));
}

// ---------------------------------------------------------------------------
// True model: skew, correlation, fanout.
// ---------------------------------------------------------------------------

Result<double> TrueCardinalityModel::PredicateSelectivity(
    const sql::Predicate& pred, const catalog::TableDef& table) const {
  if (pred.kind != sql::Predicate::Kind::kComparison) {
    return Status::InvalidArgument("join predicate passed as comparison");
  }
  // Generator-attached ground truth wins when present.
  if (pred.true_selectivity >= 0.0) return ClampSel(pred.true_selectivity);

  WMP_ASSIGN_OR_RETURN(const catalog::Column* col,
                       table.FindColumn(pred.lhs.column));
  const catalog::ColumnStats& stats = col->stats();
  const double ndv = std::max<double>(static_cast<double>(stats.ndv), 1.0);
  const double theta = stats.zipf_skew;
  switch (pred.op) {
    case sql::CompareOp::kEq:
      // Constant drawn from the data distribution: collision probability.
      return ClampSel(ZipfCollisionProb(ndv, theta));
    case sql::CompareOp::kNe:
      return ClampSel(1.0 - ZipfCollisionProb(ndv, theta));
    case sql::CompareOp::kIn:
      return ClampSel(static_cast<double>(pred.values.size()) *
                      ZipfCollisionProb(ndv, theta));
    case sql::CompareOp::kLike:
      // Text matching on skewed domains hits the hot values more often
      // than the optimizer's 10% guess on skewed columns.
      return ClampSel(OptimizerCardinalityModel::kLikeSelectivity *
                      (1.0 + theta));
    case sql::CompareOp::kLt:
    case sql::CompareOp::kLe:
    case sql::CompareOp::kGt:
    case sql::CompareOp::kGe:
    case sql::CompareOp::kBetween: {
      // Hot values sit at the low end of the domain (rank = value order),
      // so the row mass below a cutoff follows the Zipf CDF while the
      // optimizer sees only the geometric fraction.
      const double frac = DomainFraction(pred, stats);
      if (pred.op == sql::CompareOp::kGt || pred.op == sql::CompareOp::kGe) {
        return ClampSel(1.0 - ZipfCdfApprox((1.0 - frac) * ndv, ndv, theta));
      }
      if (pred.op == sql::CompareOp::kBetween) {
        // Approximate mass of the covered band assuming it starts where
        // the lower bound's fraction lands.
        const double lo_frac =
            std::clamp((pred.values[0].number - stats.min_value) /
                           std::max(stats.max_value - stats.min_value, 1e-12),
                       0.0, 1.0);
        const double hi_frac = std::clamp(lo_frac + frac, 0.0, 1.0);
        return ClampSel(ZipfCdfApprox(hi_frac * ndv, ndv, theta) -
                        ZipfCdfApprox(lo_frac * ndv, ndv, theta));
      }
      return ClampSel(ZipfCdfApprox(frac * ndv, ndv, theta));
    }
  }
  return Status::Internal("unhandled comparison op");
}

Result<double> TrueCardinalityModel::ConjunctionSelectivity(
    const std::vector<const sql::Predicate*>& preds,
    const catalog::TableDef& table) const {
  if (preds.empty()) return 1.0;
  // Individual true selectivities.
  std::vector<double> sels(preds.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    WMP_ASSIGN_OR_RETURN(sels[i], PredicateSelectivity(*preds[i], table));
  }
  // Exponential backoff for declared correlations: a fully-correlated
  // second predicate adds no extra filtering.
  double sel = sels[0];
  for (size_t i = 1; i < preds.size(); ++i) {
    double max_corr = 0.0;
    for (size_t j = 0; j < i; ++j) {
      max_corr = std::max(
          max_corr, table.CorrelationBetween(preds[i]->lhs.column,
                                             preds[j]->lhs.column));
    }
    sel *= std::pow(sels[i], 1.0 - max_corr);
  }
  return ClampSel(sel);
}

Result<double> TrueCardinalityModel::JoinSelectivity(
    const sql::Predicate& join_pred, const catalog::TableDef& left,
    const catalog::TableDef& right) const {
  OptimizerCardinalityModel base(catalog_);
  WMP_ASSIGN_OR_RETURN(double sel,
                       base.JoinSelectivity(join_pred, left, right));
  // Fanout skew declared on the FK edge scales the true output up: a few
  // hot parent keys own a disproportionate share of child rows.
  double skew = 1.0;
  if (const catalog::ForeignKey* fk =
          left.FindForeignKey(join_pred.lhs.column);
      fk != nullptr && fk->ref_table == right.name()) {
    skew = fk->fanout_skew;
  } else if (const catalog::ForeignKey* rfk =
                 right.FindForeignKey(join_pred.rhs.column);
             rfk != nullptr && rfk->ref_table == left.name()) {
    skew = rfk->fanout_skew;
  }
  if (join_pred.true_selectivity >= 0.0) {
    return ClampSel(join_pred.true_selectivity);
  }
  return ClampSel(sel * skew);
}

Result<double> TrueCardinalityModel::GroupCount(
    const std::vector<std::pair<const catalog::TableDef*, std::string_view>>& columns,
    double input_card) const {
  double groups = 1.0;
  double mean_skew = 0.0;
  for (const auto& [table, column] : columns) {
    WMP_ASSIGN_OR_RETURN(const catalog::Column* col, table->FindColumn(column));
    groups *= std::max<double>(static_cast<double>(col->stats().ndv), 1.0);
    mean_skew += col->stats().zipf_skew;
  }
  if (!columns.empty()) mean_skew /= static_cast<double>(columns.size());
  // Occupancy correction: sampling `input_card` rows cannot hit more than
  // `groups * (1 - e^{-n/groups})` distinct combinations, and skewed
  // distributions concentrate rows on fewer groups still.
  const double occupancy =
      groups * (1.0 - std::exp(-input_card / std::max(groups, 1.0)));
  const double skew_shrink = 1.0 - 0.35 * std::min(mean_skew, 1.4);
  return std::max(1.0, std::min(occupancy * skew_shrink, input_card));
}

}  // namespace wmp::plan
