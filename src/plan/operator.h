#ifndef WMP_PLAN_OPERATOR_H_
#define WMP_PLAN_OPERATOR_H_

/// \file operator.h
/// Physical operator vocabulary. Names follow Db2 EXPLAIN conventions
/// (TBSCAN, IXSCAN, HSJOIN, ...), the dialect the paper's Fig. 2 shows.
/// The operator set is closed and ordered: plan featurization (TR2) emits a
/// fixed-length vector with one (count, cardinality) slot pair per type.

#include <cstdint>
#include <string>

#include "util/status.h"

namespace wmp::plan {

/// Physical operator type.
enum class OperatorType : uint8_t {
  kTbScan = 0,   ///< sequential table scan (applies sargable predicates)
  kIxScan = 1,   ///< index range/point scan
  kFetch = 2,    ///< row fetch by RID after an index scan
  kFilter = 3,   ///< residual (non-sargable) predicate, e.g. LIKE
  kNlJoin = 4,   ///< nested-loop join
  kHsJoin = 5,   ///< hash join (build on the smaller input)
  kMsJoin = 6,   ///< sort-merge join
  kSort = 7,     ///< blocking sort (order-by, merge-join input, sort-group)
  kGroupBy = 8,  ///< aggregation; hash or stream mode
  kTemp = 9,     ///< temporary materialization
  kReturn = 10,  ///< plan root returning rows to the client
};

/// Number of distinct operator types (feature-vector sizing).
constexpr int kNumOperatorTypes = 11;

/// Db2-style upper-case name ("TBSCAN", "HSJOIN", ...).
const char* OperatorTypeName(OperatorType op);

/// Inverse of OperatorTypeName; NotFound for unknown names.
Result<OperatorType> OperatorTypeFromName(const std::string& name);

/// True for operators that break a pipeline (consume their input fully
/// before producing output): SORT, TEMP, and hash GROUP BY; HSJOIN blocks
/// on its build side only and is handled specially by the memory model.
bool IsBlocking(OperatorType op);

}  // namespace wmp::plan

#endif  // WMP_PLAN_OPERATOR_H_
