#include "plan/explain.h"

#include "util/strings.h"

namespace wmp::plan {

namespace {

void ExplainNode(const PlanNode& node, const ExplainOptions& options,
                 int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(OperatorTypeName(node.op));
  if (!node.table.empty()) {
    out->push_back('(');
    out->append(node.table);
    out->push_back(')');
  }
  // %.17g round-trips IEEE doubles exactly, so ParseExplain(Explain(p))
  // reconstructs every annotation bit-for-bit.
  out->append(
      StrFormat(" in=%.17g out=%.17g", node.input_card, node.output_card));
  if (options.include_true_cardinalities && node.true_output_card >= 0.0) {
    out->append(StrFormat(" tin=%.17g tout=%.17g", node.true_input_card,
                          node.true_output_card));
  }
  out->append(StrFormat(" width=%.17g", node.row_width));
  if (node.num_keys > 0) out->append(StrFormat(" keys=%d", node.num_keys));
  if (node.hash_mode) out->append(" hash");
  if (!node.detail.empty()) {
    out->append(" detail=\"");
    out->append(node.detail);
    out->push_back('"');
  }
  out->push_back('\n');
  for (const auto& child : node.children) {
    ExplainNode(*child, options, depth + 1, out);
  }
}

}  // namespace

std::string Explain(const PlanNode& root, const ExplainOptions& options) {
  std::string out;
  ExplainNode(root, options, 0, &out);
  return out;
}

}  // namespace wmp::plan
