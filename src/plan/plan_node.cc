#include "plan/plan_node.h"

#include <algorithm>

namespace wmp::plan {

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>(op);
  copy->input_card = input_card;
  copy->output_card = output_card;
  copy->true_input_card = true_input_card;
  copy->true_output_card = true_output_card;
  copy->row_width = row_width;
  copy->table = table;
  copy->detail = detail;
  copy->num_keys = num_keys;
  copy->hash_mode = hash_mode;
  copy->children.reserve(children.size());
  for (const auto& child : children) copy->children.push_back(child->Clone());
  return copy;
}

size_t PlanNode::TreeSize() const {
  size_t n = 1;
  for (const auto& child : children) n += child->TreeSize();
  return n;
}

size_t PlanNode::Depth() const {
  size_t deepest = 0;
  for (const auto& child : children) deepest = std::max(deepest, child->Depth());
  return deepest + 1;
}

void PlanNode::Visit(const std::function<void(const PlanNode&)>& fn) const {
  fn(*this);
  for (const auto& child : children) child->Visit(fn);
}

void PlanNode::VisitMutable(const std::function<void(PlanNode*)>& fn) {
  fn(this);
  for (const auto& child : children) child->VisitMutable(fn);
}

std::unique_ptr<PlanNode> MakeNode(
    OperatorType op, std::vector<std::unique_ptr<PlanNode>> children) {
  auto node = std::make_unique<PlanNode>(op);
  node->children = std::move(children);
  return node;
}

}  // namespace wmp::plan
