#include "plan/plan_node.h"

#include <algorithm>

namespace wmp::plan {

PlanNode* PlanNode::Clone(util::Arena* arena) const {
  PlanNode* copy = arena->New<PlanNode>(arena, op);
  copy->input_card = input_card;
  copy->output_card = output_card;
  copy->true_input_card = true_input_card;
  copy->true_output_card = true_output_card;
  copy->row_width = row_width;
  copy->table = arena->CopyString(table);
  copy->detail = arena->CopyString(detail);
  copy->num_keys = num_keys;
  copy->hash_mode = hash_mode;
  copy->children.reserve(children.size());
  for (const PlanNode* child : children) {
    copy->children.push_back(child->Clone(arena));
  }
  return copy;
}

PlanTree PlanTree::Clone() const {
  if (root_ == nullptr) return {};
  auto arena = std::make_unique<util::Arena>(kPlanArenaChunk);
  PlanNode* root = root_->Clone(arena.get());
  return PlanTree(std::move(arena), root);
}

size_t PlanNode::TreeSize() const {
  size_t n = 1;
  for (const PlanNode* child : children) n += child->TreeSize();
  return n;
}

size_t PlanNode::Depth() const {
  size_t deepest = 0;
  for (const PlanNode* child : children) {
    deepest = std::max(deepest, child->Depth());
  }
  return deepest + 1;
}

void PlanNode::Visit(const std::function<void(const PlanNode&)>& fn) const {
  fn(*this);
  for (const PlanNode* child : children) child->Visit(fn);
}

void PlanNode::VisitMutable(const std::function<void(PlanNode*)>& fn) {
  fn(this);
  for (PlanNode* child : children) child->VisitMutable(fn);
}

PlanNode* MakeNode(util::Arena* arena, OperatorType op,
                   std::initializer_list<PlanNode*> children) {
  PlanNode* node = arena->New<PlanNode>(arena, op);
  node->children.reserve(children.size());
  for (PlanNode* child : children) node->children.push_back(child);
  return node;
}

}  // namespace wmp::plan
