#ifndef WMP_PLAN_EXPLAIN_H_
#define WMP_PLAN_EXPLAIN_H_

/// \file explain.h
/// Db2-flavoured EXPLAIN text for plan trees. The format is stable and
/// machine-parseable (see plan_parser.h), so query logs can persist plans
/// as text and the training pipeline can re-ingest them — the same
/// workflow the paper's TR1 step performs against a real DBMS query log.
///
/// Grammar (one node per line, two-space indent per depth level):
///
///   OPNAME[(table)] in=<f> out=<f> [tin=<f> tout=<f>] width=<f>
///          [keys=<n>] [hash] [detail="..."]

#include <string>

#include "plan/plan_node.h"

namespace wmp::plan {

/// Rendering options.
struct ExplainOptions {
  bool include_true_cardinalities = true;  ///< emit tin=/tout= fields
};

/// \brief Renders `root` as indented EXPLAIN text.
std::string Explain(const PlanNode& root, const ExplainOptions& options = {});

}  // namespace wmp::plan

#endif  // WMP_PLAN_EXPLAIN_H_
