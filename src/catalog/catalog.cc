#include "catalog/catalog.h"

namespace wmp::catalog {

Status Catalog::AddTable(TableDef table) {
  if (HasTable(table.name())) {
    return Status::AlreadyExists("table exists: " + table.name());
  }
  order_.push_back(table.name());
  tables_.emplace(table.name(), std::move(table));
  return Status::OK();
}

Result<const TableDef*> Catalog::FindTable(std::string_view name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + std::string(name));
  }
  return &it->second;
}

bool Catalog::HasTable(std::string_view name) const {
  return tables_.find(name) != tables_.end();
}

Result<TableDef*> Catalog::FindMutableTable(std::string_view name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + std::string(name));
  }
  return &it->second;
}

}  // namespace wmp::catalog
