#include "catalog/column.h"

namespace wmp::catalog {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt:
      return "INT";
    case ColumnType::kBigInt:
      return "BIGINT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kDecimal:
      return "DECIMAL";
    case ColumnType::kString:
      return "VARCHAR";
    case ColumnType::kDate:
      return "DATE";
  }
  return "?";
}

uint32_t DefaultWidth(ColumnType t) {
  switch (t) {
    case ColumnType::kInt:
      return 4;
    case ColumnType::kBigInt:
      return 8;
    case ColumnType::kDouble:
      return 8;
    case ColumnType::kDecimal:
      return 8;
    case ColumnType::kString:
      return 24;
    case ColumnType::kDate:
      return 4;
  }
  return 8;
}

uint32_t Column::width() const {
  return stats_.avg_width != 0 ? stats_.avg_width : DefaultWidth(type_);
}

}  // namespace wmp::catalog
