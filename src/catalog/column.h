#ifndef WMP_CATALOG_COLUMN_H_
#define WMP_CATALOG_COLUMN_H_

/// \file column.h
/// Column metadata and statistics.
///
/// The statistics carry *two* views of the data: the parameters the
/// optimizer sees (ndv, min/max) and the shape of the true value
/// distribution (`zipf_skew`), which only the execution simulator uses.
/// The gap between the two is what makes the optimizer's uniformity
/// assumption err the way a production DBMS errs.

#include <cstdint>
#include <string>

namespace wmp::catalog {

/// SQL-ish column types (affects default width only).
enum class ColumnType : uint8_t { kInt, kBigInt, kDouble, kDecimal, kString, kDate };

/// Human-readable type name ("INT", "VARCHAR", ...).
const char* ColumnTypeName(ColumnType t);

/// Default storage width in bytes for a type.
uint32_t DefaultWidth(ColumnType t);

/// \brief Per-column statistics.
struct ColumnStats {
  /// Number of distinct values. The optimizer assumes they are uniformly
  /// likely; the simulator draws them Zipf(ndv, zipf_skew).
  uint64_t ndv = 1000;
  /// Domain bounds used by range-predicate selectivity math.
  double min_value = 0.0;
  double max_value = 1000.0;
  /// Skew of the true frequency distribution (0 = uniform, ~1 = heavy).
  double zipf_skew = 0.0;
  double null_fraction = 0.0;
  /// Average stored width in bytes (0 = derive from type).
  uint32_t avg_width = 0;
};

/// \brief A column definition: name, type, statistics.
class Column {
 public:
  Column() = default;
  Column(std::string name, ColumnType type, ColumnStats stats = {})
      : name_(std::move(name)), type_(type), stats_(stats) {}

  const std::string& name() const { return name_; }
  ColumnType type() const { return type_; }
  const ColumnStats& stats() const { return stats_; }
  ColumnStats& mutable_stats() { return stats_; }

  /// Effective width in bytes (explicit avg_width, else type default).
  uint32_t width() const;

 private:
  std::string name_;
  ColumnType type_ = ColumnType::kInt;
  ColumnStats stats_;
};

}  // namespace wmp::catalog

#endif  // WMP_CATALOG_COLUMN_H_
