#ifndef WMP_CATALOG_CATALOG_H_
#define WMP_CATALOG_CATALOG_H_

/// \file catalog.h
/// The schema registry the planner, estimators, and workload generators
/// share.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/table.h"
#include "util/status.h"

namespace wmp::catalog {

/// \brief A named collection of tables.
class Catalog {
 public:
  Catalog() = default;

  /// Registers a table; fails on duplicate names.
  Status AddTable(TableDef table);

  /// Looks up a table by name.
  Result<const TableDef*> FindTable(std::string_view name) const;
  bool HasTable(std::string_view name) const;

  /// Mutable lookup (for generators adjusting statistics).
  Result<TableDef*> FindMutableTable(std::string_view name);

  /// Table names in registration order.
  const std::vector<std::string>& table_names() const { return order_; }
  size_t num_tables() const { return tables_.size(); }

 private:
  std::map<std::string, TableDef, std::less<>> tables_;
  std::vector<std::string> order_;
};

}  // namespace wmp::catalog

#endif  // WMP_CATALOG_CATALOG_H_
