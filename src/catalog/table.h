#ifndef WMP_CATALOG_TABLE_H_
#define WMP_CATALOG_TABLE_H_

/// \file table.h
/// Table definitions: columns, row counts, indexes, foreign keys, and
/// intra-table column correlations (the statistic real optimizers lack,
/// which the true-cardinality oracle uses).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/column.h"
#include "util/status.h"

namespace wmp::catalog {

/// \brief Secondary index metadata (single-column).
struct Index {
  std::string column;
  bool unique = false;
};

/// \brief Foreign-key edge `this.local_column -> ref_table.ref_column`.
///
/// `fanout_skew` scales the true join output relative to the optimizer's
/// containment estimate: values > 1 model skewed fanouts (a few hot parent
/// rows owning most children), the common reason real join estimates are
/// low.
struct ForeignKey {
  std::string local_column;
  std::string ref_table;
  std::string ref_column;
  double fanout_skew = 1.0;
};

/// \brief Pairwise column correlation used only by the true-cardinality
/// oracle. The optimizer multiplies predicate selectivities independently;
/// the oracle combines them with exponential backoff
/// `s1 * s2^(1 - strength)`.
struct Correlation {
  std::string column_a;
  std::string column_b;
  double strength = 0.0;  ///< 0 = independent, 1 = fully correlated.
};

/// \brief A table definition.
class TableDef {
 public:
  TableDef() = default;
  TableDef(std::string name, uint64_t row_count)
      : name_(std::move(name)), row_count_(row_count) {}

  const std::string& name() const { return name_; }
  uint64_t row_count() const { return row_count_; }
  void set_row_count(uint64_t n) { row_count_ = n; }

  /// Adds a column; fails on duplicate names.
  Status AddColumn(Column column);
  /// Declares a single-column index. The column must exist.
  Status AddIndex(const std::string& column, bool unique = false);
  /// Declares a foreign key. The local column must exist.
  Status AddForeignKey(ForeignKey fk);
  /// Declares a correlated column pair; both columns must exist and
  /// `strength` must lie in [0, 1].
  Status AddCorrelation(const std::string& a, const std::string& b,
                        double strength);

  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<Index>& indexes() const { return indexes_; }
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }
  const std::vector<Correlation>& correlations() const { return correlations_; }

  /// Looks up a column by name.
  Result<const Column*> FindColumn(std::string_view name) const;
  bool HasColumn(std::string_view name) const;
  /// True if some index covers `column`.
  bool HasIndexOn(std::string_view column) const;
  /// Correlation strength between two columns (0 when undeclared).
  double CorrelationBetween(std::string_view a, std::string_view b) const;
  /// Foreign key departing from `column`, if any.
  const ForeignKey* FindForeignKey(std::string_view column) const;

  /// Sum of column widths: average materialized row width in bytes.
  uint32_t row_width() const;

 private:
  std::string name_;
  uint64_t row_count_ = 0;
  std::vector<Column> columns_;
  std::vector<Index> indexes_;
  std::vector<ForeignKey> foreign_keys_;
  std::vector<Correlation> correlations_;
};

}  // namespace wmp::catalog

#endif  // WMP_CATALOG_TABLE_H_
