#include "catalog/table.h"

#include <algorithm>

namespace wmp::catalog {

Status TableDef::AddColumn(Column column) {
  if (HasColumn(column.name())) {
    return Status::AlreadyExists("column exists: " + column.name());
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

Status TableDef::AddIndex(const std::string& column, bool unique) {
  if (!HasColumn(column)) {
    return Status::NotFound("index on unknown column: " + column);
  }
  indexes_.push_back({column, unique});
  return Status::OK();
}

Status TableDef::AddForeignKey(ForeignKey fk) {
  if (!HasColumn(fk.local_column)) {
    return Status::NotFound("foreign key on unknown column: " + fk.local_column);
  }
  foreign_keys_.push_back(std::move(fk));
  return Status::OK();
}

Status TableDef::AddCorrelation(const std::string& a, const std::string& b,
                                double strength) {
  if (!HasColumn(a) || !HasColumn(b)) {
    return Status::NotFound("correlation on unknown column");
  }
  if (strength < 0.0 || strength > 1.0) {
    return Status::InvalidArgument("correlation strength must be in [0, 1]");
  }
  correlations_.push_back({a, b, strength});
  return Status::OK();
}

Result<const Column*> TableDef::FindColumn(std::string_view name) const {
  for (const Column& c : columns_) {
    if (c.name() == name) return &c;
  }
  return Status::NotFound("column not found: " + name_ + "." +
                          std::string(name));
}

bool TableDef::HasColumn(std::string_view name) const {
  return std::any_of(columns_.begin(), columns_.end(),
                     [&](const Column& c) { return c.name() == name; });
}

bool TableDef::HasIndexOn(std::string_view column) const {
  return std::any_of(indexes_.begin(), indexes_.end(),
                     [&](const Index& i) { return i.column == column; });
}

double TableDef::CorrelationBetween(std::string_view a,
                                    std::string_view b) const {
  for (const Correlation& c : correlations_) {
    if ((c.column_a == a && c.column_b == b) ||
        (c.column_a == b && c.column_b == a)) {
      return c.strength;
    }
  }
  return 0.0;
}

const ForeignKey* TableDef::FindForeignKey(std::string_view column) const {
  for (const ForeignKey& fk : foreign_keys_) {
    if (fk.local_column == column) return &fk;
  }
  return nullptr;
}

uint32_t TableDef::row_width() const {
  uint32_t w = 0;
  for (const Column& c : columns_) w += c.width();
  return w;
}

}  // namespace wmp::catalog
