#include "net/fault_inject.h"

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "net/socket.h"
#include "util/strings.h"

namespace wmp::net {

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

// splitmix64 — the repo's standard cheap deterministic generator.
uint64_t NextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double UnitDouble(uint64_t r) {
  return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
}

// The plain blocking write loop (what frame.cc would do without faults).
Status PlainWrite(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = SendSome(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("frame write timed out");
      }
      return Status::IOError(
          StrFormat("frame write failed: %s", std::strerror(errno)));
    }
    if (w == 0) return Status::IOError("frame write made no progress");
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDrop: return "drop";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kBitFlip: return "bit-flip";
    case FaultKind::kReset: return "reset";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_state_(plan_.seed) {}

FaultInjector::~FaultInjector() { Disarm(); }

void FaultInjector::Arm() { g_injector.store(this, std::memory_order_release); }

void FaultInjector::Disarm() {
  FaultInjector* expected = this;
  g_injector.compare_exchange_strong(expected, nullptr,
                                     std::memory_order_acq_rel);
}

void FaultInjector::TargetFd(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  target_fds_.insert(fd);
}

void FaultInjector::UntargetFd(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  target_fds_.erase(fd);
}

bool FaultInjector::Targets(int fd) const {
  return target_fds_.empty() || target_fds_.count(fd) > 0;
}

FaultStats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

ScriptedFault FaultInjector::NextFault(size_t n) {
  // Counter and RNG advance for every targeted op, faulted or not, so the
  // sequence of draws — and therefore which ops fault — depends only on
  // the plan and the op order, never on what earlier faults did.
  const uint64_t index = op_counter_++;
  const double u = UnitDouble(NextRand(&rng_state_));
  stats_.ops++;
  for (const ScriptedFault& s : plan_.script) {
    if (s.op_index == index && s.kind != FaultKind::kNone) return s;
  }
  ScriptedFault fault;
  fault.delay_ms = plan_.delay_ms;
  fault.keep_bytes = n > 1 ? n / 2 : 0;  // default truncation: half a frame
  double edge = plan_.delay_prob;
  if (u < edge) {
    fault.kind = FaultKind::kDelay;
    return fault;
  }
  if (u < (edge += plan_.drop_prob)) {
    fault.kind = FaultKind::kDrop;
    return fault;
  }
  if (u < (edge += plan_.truncate_prob)) {
    fault.kind = FaultKind::kTruncate;
    return fault;
  }
  if (u < (edge += plan_.flip_prob)) {
    fault.kind = FaultKind::kBitFlip;
    fault.bit = NextRand(&rng_state_);
    return fault;
  }
  if (u < edge + plan_.reset_prob) {
    fault.kind = FaultKind::kReset;
    return fault;
  }
  return fault;  // kNone
}

Status FaultInjector::InjectedWrite(int fd, const char* data, size_t n) {
  ScriptedFault fault;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!plan_.faults_writes || !Targets(fd)) return PlainWrite(fd, data, n);
    fault = NextFault(n);
    switch (fault.kind) {
      case FaultKind::kNone: break;
      case FaultKind::kDelay: stats_.delays++; break;
      case FaultKind::kDrop: stats_.drops++; break;
      case FaultKind::kTruncate: stats_.truncations++; break;
      case FaultKind::kBitFlip: stats_.bitflips++; break;
      case FaultKind::kReset: stats_.resets++; break;
    }
  }
  switch (fault.kind) {
    case FaultKind::kNone:
      return PlainWrite(fd, data, n);
    case FaultKind::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(
          fault.delay_ms > 0 ? fault.delay_ms : plan_.delay_ms));
      return PlainWrite(fd, data, n);
    case FaultKind::kDrop:
      // The caller believes the frame left; the peer never sees it. The
      // bytes-in-flight invariant a deadline must cover.
      return Status::OK();
    case FaultKind::kTruncate: {
      const size_t keep = fault.keep_bytes < n ? fault.keep_bytes : n / 2;
      Status st = keep > 0 ? PlainWrite(fd, data, keep) : Status::OK();
      ::shutdown(fd, SHUT_RDWR);
      return st.ok() ? Status::IOError(StrFormat(
                           "fault injection: frame truncated after %zu/%zu "
                           "bytes and connection reset",
                           keep, n))
                     : st;
    }
    case FaultKind::kBitFlip: {
      std::string corrupted(data, n);
      if (n > 0) {
        const uint64_t bit = fault.bit % (static_cast<uint64_t>(n) * 8);
        corrupted[static_cast<size_t>(bit / 8)] ^=
            static_cast<char>(1u << (bit % 8));
      }
      return PlainWrite(fd, corrupted.data(), corrupted.size());
    }
    case FaultKind::kReset:
      ::shutdown(fd, SHUT_RDWR);
      return Status::IOError("fault injection: connection reset on write");
  }
  return PlainWrite(fd, data, n);
}

Status FaultInjector::BeforeRead(int fd) {
  ScriptedFault fault;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!plan_.faults_reads || !Targets(fd)) return Status::OK();
    fault = NextFault(0);
    switch (fault.kind) {
      case FaultKind::kNone: break;
      // Write-only kinds degrade to the nearest read-shaped fault.
      case FaultKind::kDrop:
      case FaultKind::kDelay: stats_.delays++; break;
      case FaultKind::kTruncate:
      case FaultKind::kBitFlip:
      case FaultKind::kReset: stats_.resets++; break;
    }
  }
  switch (fault.kind) {
    case FaultKind::kNone:
      return Status::OK();
    case FaultKind::kDelay:
    case FaultKind::kDrop:
      std::this_thread::sleep_for(std::chrono::milliseconds(
          fault.delay_ms > 0 ? fault.delay_ms : plan_.delay_ms));
      return Status::OK();
    case FaultKind::kTruncate:
    case FaultKind::kBitFlip:
    case FaultKind::kReset:
      ::shutdown(fd, SHUT_RDWR);
      return Status::IOError("fault injection: connection reset on read");
  }
  return Status::OK();
}

FaultInjector* ActiveFaultInjector() {
  return g_injector.load(std::memory_order_acquire);
}

}  // namespace wmp::net
