#ifndef WMP_NET_REACTOR_SERVER_H_
#define WMP_NET_REACTOR_SERVER_H_

/// \file reactor_server.h
/// Single-threaded event-loop front end for engine::ScoringService — the
/// production wire server for many concurrent controllers on a small box.
///
/// Architecture
///
///     clients ──frames──▶ epoll/poll reactor (ONE thread)
///                           │  nonblocking accept + per-connection
///                           │  read/write buffers, incremental WMF1
///                           │  reassembly, write backpressure,
///                           │  idle timeouts
///                           ▼
///              net::RequestDispatcher (decode/validate/encode — shared
///                           │          with the blocking WireServer)
///                           ▼
///              engine::ScoringService ──flush──▶ completion doorbell
///                           ▲                    (eventfd/self-pipe)
///                           └── score futures parked, never get() on
///                               the loop thread
///
///  * **Why a reactor.** The blocking WireServer spends a thread (and its
///    context switches) per socket; on the 1-core deployment tens of
///    controllers already burn the core on scheduling. The reactor
///    multiplexes every socket from one thread, and — because score work
///    is handed to the service asynchronously — the service's cross-client
///    micro-batching finally sees MANY sockets' requests in one flush
///    window instead of one request per blocked handler thread.
///  * **Score requests never block the loop.** A decoded score request is
///    submitted (RequestDispatcher::SubmitScore), its futures parked, and
///    the loop goes back to the poller. The service's completion callback
///    (ScoringService::SetCompletionCallback) writes the reactor's wakeup
///    fd after each flush; the loop then drains finished futures with
///    zero-timeout polls and writes the responses. Publish/rollback/stats
///    frames execute inline — they are control-plane rare and must
///    serialize against rollouts anyway.
///  * **Ordering.** Plain frames keep the blocking protocol's strict
///    request→response order per connection (an ordered response-slot
///    queue holds completed responses until their predecessors finish).
///    kScoreRequestPipelined frames answer in completion order, matched by
///    correlation id — that is what lets net::AsyncWireClient keep N
///    requests in flight per connection.
///  * **Backpressure.** Responses are buffered per connection and written
///    as the socket accepts them (write interest toggles on partial
///    writes). When a slow reader's buffer passes the high watermark the
///    reactor stops READING that connection until the buffer drains below
///    half — bounded memory per connection, no stalling anyone else.
///  * **Hostile input.** Same contract as the blocking server (shared
///    decode paths): size caps before allocation, bounds-checked decode,
///    kError per request where the stream is still framed; a
///    desynchronized stream gets a best-effort kError and the connection
///    is flushed and closed. Other connections never notice. Connections
///    idle past `idle_timeout_ms` are closed.
///
/// Thread-safety: Listen + (Serve|Start) once from one thread;
/// Shutdown/stats/address from any thread. The server registers itself as
/// the service's completion callback for the duration of the loop — run at
/// most one reactor per ScoringService.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/model_registry.h"
#include "engine/scoring_service.h"
#include "net/dispatch.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace wmp::net {

struct ReactorServerOptions {
  /// Receiver-side frame bound (see FrameLimits).
  size_t max_payload_bytes = 64ull << 20;
  /// Listen backlog (deeper than the blocking server's: one thread accepts
  /// for everyone).
  int backlog = 128;
  /// Pause reading a connection whose outbound buffer exceeds this many
  /// bytes; resume below half of it.
  size_t write_high_watermark = 4ull << 20;
  /// Close connections with no I/O progress for this long; <= 0 disables.
  int64_t idle_timeout_ms = 5 * 60 * 1000;
};

/// Reactor counters: the wire-visible set (shared shape with the blocking
/// server so stats frames stay comparable) plus loop-specific ones.
struct ReactorCounters {
  WireServerCounters wire;
  uint64_t backpressure_pauses = 0;  ///< reads paused on the high watermark
  uint64_t idle_closed = 0;          ///< connections reaped by the timeout
  uint64_t pipelined_frames = 0;     ///< kScoreRequestPipelined served
};

/// \brief Event-loop socket server exposing a ScoringService + ModelRegistry.
class ReactorServer {
 public:
  /// Borrows `service` and `registry`; both must outlive the server, and
  /// the service must not be Stop()ped before Shutdown() returns (parked
  /// score futures are fulfilled by its dispatchers).
  ReactorServer(engine::ScoringService* service,
                engine::ModelRegistry* registry, std::string model_name,
                ReactorServerOptions options = {});
  ~ReactorServer();
  ReactorServer(const ReactorServer&) = delete;
  ReactorServer& operator=(const ReactorServer&) = delete;

  /// Binds and listens on `address` ("unix:PATH" or "host:port";
  /// "127.0.0.1:0" picks an ephemeral port — see address()).
  Status Listen(const std::string& address);

  /// Runs the event loop on the calling thread until Shutdown().
  Status Serve();

  /// Runs the event loop on an internal thread. Pair with Shutdown().
  Status Start();

  /// Stops the loop (via the wakeup fd), closes every connection, waits
  /// out parked score futures, joins the Start thread. Idempotent; also
  /// run by the destructor.
  void Shutdown();

  const std::string& address() const { return listener_.address(); }
  int port() const { return listener_.port(); }

  ReactorCounters stats() const;

 private:
  /// Readiness multiplexer: epoll on Linux, poll(2) elsewhere — the
  /// interest map is identical either way, only Wait differs.
  class Poller;
  struct PollEvent {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  /// A response waiting for its place in the plain (non-pipelined)
  /// request→response order of one connection.
  struct ResponseSlot {
    uint64_t id = 0;
    bool ready = false;
    Frame frame;
  };

  struct Conn {
    int fd = -1;
    /// Inbound bytes not yet parsed; `rpos` is the consumed prefix
    /// (compacted periodically so a long-lived connection doesn't grow it
    /// forever).
    std::string rbuf;
    size_t rpos = 0;
    /// Outbound bytes not yet accepted by the kernel.
    std::string wbuf;
    size_t wpos = 0;
    bool read_paused = false;  ///< backpressure: over the high watermark
    bool closing = false;      ///< flush slots + wbuf, then close
    bool registered_read = false;
    bool registered_write = false;
    uint64_t pending_scores = 0;  ///< parked score requests on this conn
    uint64_t next_slot_id = 0;
    std::deque<ResponseSlot> slots;
    std::chrono::steady_clock::time_point last_activity;
  };

  /// One parked score request: owns the decoded request (Submit borrows
  /// its records until every future resolves) and collects outcomes as
  /// the service fulfills them.
  struct PendingScore {
    std::shared_ptr<Conn> conn;
    std::unique_ptr<ScoreRequest> request;
    std::vector<std::future<Result<double>>> futures;
    std::vector<Result<double>> outcomes;
    bool pipelined = false;
    uint32_t correlation_id = 0;
    uint64_t slot_id = 0;  ///< plain requests only
  };

  void RunLoop();
  void AcceptNew();
  void OnReadable(const std::shared_ptr<Conn>& conn);
  void OnWritable(const std::shared_ptr<Conn>& conn);
  void ParseFrames(const std::shared_ptr<Conn>& conn);
  void HandleFrame(const std::shared_ptr<Conn>& conn, Frame frame);
  void HandleScoreFrame(const std::shared_ptr<Conn>& conn,
                        const Frame& frame);
  void HandlePipelinedScoreFrame(const std::shared_ptr<Conn>& conn,
                                 const Frame& frame);
  /// Appends a frame at the back of the plain response order.
  void PushOrdered(const std::shared_ptr<Conn>& conn, Frame frame);
  /// Opens an unfilled slot in the plain response order; CompleteSlot
  /// fills it (possibly much later) and flushes what became writable.
  uint64_t OpenSlot(const std::shared_ptr<Conn>& conn);
  void CompleteSlot(const std::shared_ptr<Conn>& conn, uint64_t slot_id,
                    Frame frame);
  void FlushReadySlots(const std::shared_ptr<Conn>& conn);
  /// Encodes `frame` into the connection's write buffer and writes what
  /// the socket will take now.
  void AppendFrame(const std::shared_ptr<Conn>& conn, const Frame& frame);
  /// Writes buffered bytes until the kernel pushes back; manages write
  /// interest, backpressure resume, and deferred close.
  void TryWrite(const std::shared_ptr<Conn>& conn);
  void UpdateInterest(const std::shared_ptr<Conn>& conn);
  /// Collects outcomes from parked requests whose futures resolved and
  /// writes their responses.
  void DrainCompletions();
  void CloseIdleConns();
  void MaybeFinishClose(const std::shared_ptr<Conn>& conn);
  void Teardown(const std::shared_ptr<Conn>& conn);
  void WakeLoop();
  /// Poll timeout until the next idle deadline; -1 when none.
  int NextTimeoutMs() const;
  WireServerCounters WireCounters() const;

  RequestDispatcher dispatcher_;
  ReactorServerOptions options_;
  FrameLimits limits_;
  Listener listener_;
  std::unique_ptr<Poller> poller_;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;  ///< == wake_read_fd_ with eventfd
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  std::vector<std::unique_ptr<PendingScore>> pendings_;
  std::thread serve_thread_;  // Start() only
  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> loop_running_{false};
  std::mutex shutdown_mutex_;  // serializes Shutdown vs destructor

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_served_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> accept_failures_{0};
  std::atomic<uint64_t> backpressure_pauses_{0};
  std::atomic<uint64_t> idle_closed_{0};
  std::atomic<uint64_t> pipelined_frames_{0};
};

}  // namespace wmp::net

#endif  // WMP_NET_REACTOR_SERVER_H_
