#ifndef WMP_NET_DISPATCH_H_
#define WMP_NET_DISPATCH_H_

/// \file dispatch.h
/// Transport-independent request execution shared by the blocking
/// net::WireServer and the event-loop net::ReactorServer.
///
/// Both servers speak the same WMF1 frames and land work on the same
/// engine::ScoringService / engine::ModelRegistry; what differs is purely
/// how bytes arrive (thread-per-connection blocking reads vs. one reactor
/// multiplexing every socket). Everything that is NOT transport lives
/// here: decode, validation (including the publish artifact checksum,
/// which DecodePublishRequest enforces), registry/service calls, and
/// response encoding. That is what keeps the two servers bitwise
/// interchangeable — a response frame depends only on the request frame
/// and the service state, never on which server built it.
///
/// Scoring is the one request that is intentionally split: SubmitScore
/// enqueues every workload of a request and hands back the futures, and
/// BuildScoreResponse turns collected outcomes into the response frame.
/// The blocking server calls them back to back (get() between the two);
/// the reactor parks the futures and finishes the response as the service
/// fulfills them, without ever blocking the event loop.

#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "engine/model_registry.h"
#include "engine/scoring_service.h"
#include "net/frame.h"
#include "net/protocol.h"

namespace wmp::net {

/// Builds the kError frame for `status` (code + message as an ErrorBody).
Frame ErrorFrame(const Status& status);

/// \brief Executes decoded requests against a service + registry pair.
///
/// Borrows both; they must outlive the dispatcher. `default_model_name` is
/// the registry name publish frames fall back to when they carry an empty
/// name.
class RequestDispatcher {
 public:
  RequestDispatcher(engine::ScoringService* service,
                    engine::ModelRegistry* registry,
                    std::string default_model_name)
      : service_(service),
        registry_(registry),
        default_model_name_(std::move(default_model_name)) {}

  /// Submits every workload of `request` to the service; futures come back
  /// in workload order. The caller owns `request` and must keep its
  /// `records` alive until every future resolves (Submit's borrow).
  std::vector<std::future<Result<double>>> SubmitScore(
      const ScoreRequest& request) const;

  /// Folds fully-collected outcomes into a kScoreResponse frame.
  static Frame BuildScoreResponse(std::vector<Result<double>> outcomes);

  /// Deserializes the carried artifact (checksum already verified at
  /// decode) and rolls it out across all shards with registry recording.
  Frame HandlePublish(const Frame& request) const;

  /// Re-publishes the previous registry epoch of the named model.
  Frame HandleRollback(const Frame& request) const;

  /// Service counters + the calling server's own counters.
  Frame HandleStats(const WireServerCounters& server) const;

  /// \name Fleet control plane (kHealth / kStage / kCommit / kAbort).
  ///
  /// The two-phase publish parks exactly ONE validated artifact per
  /// server (a newer stage replaces an older one — the router serializes
  /// rollouts, so a lingering staged artifact is a failed rollout's
  /// leftover, not a concurrent one). Commit must name the ticket stage
  /// returned; a mismatch fails without touching the parked artifact so
  /// the router's abort can still clean up.
  /// @{
  /// Liveness/epoch probe: echoes the nonce, reports the default model's
  /// current registry epoch, any staged ticket, and the queue depth.
  Frame HandleHealth(const Frame& request) const;
  /// Validates (checksum via DecodePublishRequest, then deserialize) and
  /// parks the artifact without installing it. Answers kStageResponse.
  Frame HandleStage(const Frame& request);
  /// Installs the parked artifact via PublishAll. Answers kCommitResponse
  /// (a PublishResponse payload).
  Frame HandleCommit(const Frame& request);
  /// Discards the parked artifact (ticket 0 = whatever is staged).
  /// Idempotent: aborting with nothing staged succeeds, had_staged = 0.
  Frame HandleAbort(const Frame& request);
  /// @}

  /// The response for a frame type no server understands.
  static Frame UnexpectedFrame(FrameType type);

  engine::ScoringService* service() const { return service_; }

 private:
  /// A validated artifact waiting for commit.
  struct StagedArtifact {
    uint64_t ticket = 0;
    uint64_t artifact_hash = 0;
    std::string model_name;
    std::shared_ptr<const core::LearnedWmpModel> model;
  };

  engine::ScoringService* service_;
  engine::ModelRegistry* registry_;
  std::string default_model_name_;
  mutable std::mutex stage_mutex_;
  std::optional<StagedArtifact> staged_;
  uint64_t next_ticket_ = 1;
};

}  // namespace wmp::net

#endif  // WMP_NET_DISPATCH_H_
