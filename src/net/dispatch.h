#ifndef WMP_NET_DISPATCH_H_
#define WMP_NET_DISPATCH_H_

/// \file dispatch.h
/// Transport-independent request execution shared by the blocking
/// net::WireServer and the event-loop net::ReactorServer.
///
/// Both servers speak the same WMF1 frames and land work on the same
/// engine::ScoringService / engine::ModelRegistry; what differs is purely
/// how bytes arrive (thread-per-connection blocking reads vs. one reactor
/// multiplexing every socket). Everything that is NOT transport lives
/// here: decode, validation (including the publish artifact checksum,
/// which DecodePublishRequest enforces), registry/service calls, and
/// response encoding. That is what keeps the two servers bitwise
/// interchangeable — a response frame depends only on the request frame
/// and the service state, never on which server built it.
///
/// Scoring is the one request that is intentionally split: SubmitScore
/// enqueues every workload of a request and hands back the futures, and
/// BuildScoreResponse turns collected outcomes into the response frame.
/// The blocking server calls them back to back (get() between the two);
/// the reactor parks the futures and finishes the response as the service
/// fulfills them, without ever blocking the event loop.

#include <future>
#include <string>
#include <vector>

#include "engine/model_registry.h"
#include "engine/scoring_service.h"
#include "net/frame.h"
#include "net/protocol.h"

namespace wmp::net {

/// Builds the kError frame for `status` (code + message as an ErrorBody).
Frame ErrorFrame(const Status& status);

/// \brief Executes decoded requests against a service + registry pair.
///
/// Borrows both; they must outlive the dispatcher. `default_model_name` is
/// the registry name publish frames fall back to when they carry an empty
/// name.
class RequestDispatcher {
 public:
  RequestDispatcher(engine::ScoringService* service,
                    engine::ModelRegistry* registry,
                    std::string default_model_name)
      : service_(service),
        registry_(registry),
        default_model_name_(std::move(default_model_name)) {}

  /// Submits every workload of `request` to the service; futures come back
  /// in workload order. The caller owns `request` and must keep its
  /// `records` alive until every future resolves (Submit's borrow).
  std::vector<std::future<Result<double>>> SubmitScore(
      const ScoreRequest& request) const;

  /// Folds fully-collected outcomes into a kScoreResponse frame.
  static Frame BuildScoreResponse(std::vector<Result<double>> outcomes);

  /// Deserializes the carried artifact (checksum already verified at
  /// decode) and rolls it out across all shards with registry recording.
  Frame HandlePublish(const Frame& request) const;

  /// Re-publishes the previous registry epoch of the named model.
  Frame HandleRollback(const Frame& request) const;

  /// Service counters + the calling server's own counters.
  Frame HandleStats(const WireServerCounters& server) const;

  /// The response for a frame type no server understands.
  static Frame UnexpectedFrame(FrameType type);

  engine::ScoringService* service() const { return service_; }

 private:
  engine::ScoringService* service_;
  engine::ModelRegistry* registry_;
  std::string default_model_name_;
};

}  // namespace wmp::net

#endif  // WMP_NET_DISPATCH_H_
