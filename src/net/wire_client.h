#ifndef WMP_NET_WIRE_CLIENT_H_
#define WMP_NET_WIRE_CLIENT_H_

/// \file wire_client.h
/// Client side of the wire protocol: what a DBMS admission controller (or
/// wmpctl / the benches) embeds to consult a remote ScoringService.
///
///  * **Connection reuse.** One client holds one blocking connection and
///    pipelines request/response pairs over it; Connect is automatic on
///    first use and after an I/O failure (one transparent reconnect per
///    call — a restarted server looks like a slow call, not an error).
///  * **Batched score requests.** `ScoreWorkloads` mirrors
///    engine::BatchScorer::ScoreWorkloads: one frame carries the whole
///    record batch plus every workload's member indices, the server
///    micro-batches them through its shards, and one frame returns every
///    outcome — the request count is per *call*, not per workload.
///  * **Rollouts.** `Publish` ships a locally-trained artifact
///    (LearnedWmpModel::Serialize bytes) and returns the registry epoch
///    the server now serves; `Rollback` restores the previous epoch.
///
/// Thread-safety: a WireClient is a single connection and is NOT
/// thread-safe; give each client thread its own instance (they multiplex
/// fine on the server side).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/learned_wmp.h"
#include "core/workload.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "workloads/query_record.h"

namespace wmp::net {

struct WireClientOptions {
  /// Receiver-side frame bound (see FrameLimits).
  size_t max_payload_bytes = 64ull << 20;
  /// \name Deadlines (0 = unbounded, the pre-hardening behavior).
  ///
  /// connect_timeout_ms bounds connect(2) itself (see ConnectTo);
  /// read/write_timeout_ms arm SO_RCVTIMEO/SO_SNDTIMEO, so a stalled
  /// server surfaces as kDeadlineExceeded instead of parking the caller
  /// forever. A deadline error closes the connection (the stream position
  /// is unknowable once a frame may be half-transferred).
  /// @{
  int connect_timeout_ms = 0;
  int read_timeout_ms = 0;
  int write_timeout_ms = 0;
  /// @}
  /// Total tries per call, >= 1. The default keeps the original "one
  /// transparent resend" behavior; a router talking to a flapping node
  /// raises it. Retries beyond the first pace themselves with bounded
  /// exponential backoff + full jitter (net/backoff.h). Regardless of
  /// attempts left, a non-idempotent request NEVER resends after a failed
  /// response read — see RoundTrip.
  int max_attempts = 2;
  uint32_t backoff_base_ms = 10;
  uint32_t backoff_cap_ms = 1000;
  /// Jitter RNG seed; mixed with the address hash so identical clients
  /// still de-synchronize. Fixed seed -> reproducible delay sequence.
  uint64_t jitter_seed = 0;
};

/// \brief One reusable client connection to a net::WireServer.
class WireClient {
 public:
  explicit WireClient(std::string address, WireClientOptions options = {});
  ~WireClient();
  WireClient(WireClient&&) = delete;
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Establishes the connection now (otherwise the first call does).
  Status Connect();
  /// Drops the connection; the next call reconnects.
  void Close();
  bool connected() const { return fd_ >= 0; }
  const std::string& address() const { return address_; }

  /// Round-trips a ping (connectivity / liveness probe).
  Status Ping();

  /// Scores every workload remotely in one request; returns one
  /// Result<double> per batch, in order. The call-level Result is the
  /// transport/protocol outcome; per-workload failures (e.g. an empty
  /// workload under a fixed-length model) come back inside the vector.
  Result<std::vector<Result<double>>> ScoreWorkloads(
      std::string_view tenant,
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<core::WorkloadBatch>& batches);

  /// Serializes `model` and publishes it across every server shard under
  /// `name` (server default when empty). Returns the registry epoch now
  /// serving.
  Result<uint64_t> Publish(std::string_view name,
                           const core::LearnedWmpModel& model);

  /// Rolls `name` back to the previous registry epoch; returns it.
  Result<uint64_t> Rollback(std::string_view name);

  /// Service + server counters snapshot.
  Result<StatsResponse> Stats();

  /// \name Fleet control plane (what net::FleetRouter drives).
  /// @{
  /// Liveness/epoch probe; the response echoes `nonce`.
  Result<HealthResponse> Health(uint64_t nonce);
  /// Stages pre-serialized artifact bytes (phase one of a two-phase
  /// publish) without installing them. Idempotent: re-staging the same
  /// bytes just replaces the parked copy under a fresh ticket, so a lost
  /// stage response is safe to retry.
  Result<StageResponse> Stage(std::string_view name,
                              const std::string& model_bytes);
  /// Installs the staged artifact (phase two). NOT idempotent — same
  /// never-resend rule as Publish.
  Result<PublishResponse> Commit(uint64_t ticket);
  /// Discards a staged artifact (0 = whatever is parked). Idempotent.
  Result<AbortResponse> Abort(uint64_t ticket);
  /// @}

 private:
  /// Sends one request frame and reads its response, reconnecting and
  /// resending once when the failure provably preceded server-side
  /// execution (connect/write failures). `idempotent` additionally allows
  /// the resend after a failed response READ — safe for score/ping/stats,
  /// never for publish/rollback (the server may have applied them before
  /// the response was lost). kError frames convert to their carried
  /// Status.
  Result<Frame> RoundTrip(FrameType request, std::string payload,
                          FrameType expected_response,
                          bool idempotent = true);

  std::string address_;
  WireClientOptions options_;
  int fd_ = -1;
  uint64_t backoff_state_ = 0;  ///< jitter RNG; seeded in the constructor
};

}  // namespace wmp::net

#endif  // WMP_NET_WIRE_CLIENT_H_
