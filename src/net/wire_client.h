#ifndef WMP_NET_WIRE_CLIENT_H_
#define WMP_NET_WIRE_CLIENT_H_

/// \file wire_client.h
/// Client side of the wire protocol: what a DBMS admission controller (or
/// wmpctl / the benches) embeds to consult a remote ScoringService.
///
///  * **Connection reuse.** One client holds one blocking connection and
///    pipelines request/response pairs over it; Connect is automatic on
///    first use and after an I/O failure (one transparent reconnect per
///    call — a restarted server looks like a slow call, not an error).
///  * **Batched score requests.** `ScoreWorkloads` mirrors
///    engine::BatchScorer::ScoreWorkloads: one frame carries the whole
///    record batch plus every workload's member indices, the server
///    micro-batches them through its shards, and one frame returns every
///    outcome — the request count is per *call*, not per workload.
///  * **Rollouts.** `Publish` ships a locally-trained artifact
///    (LearnedWmpModel::Serialize bytes) and returns the registry epoch
///    the server now serves; `Rollback` restores the previous epoch.
///
/// Thread-safety: a WireClient is a single connection and is NOT
/// thread-safe; give each client thread its own instance (they multiplex
/// fine on the server side).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/learned_wmp.h"
#include "core/workload.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "workloads/query_record.h"

namespace wmp::net {

struct WireClientOptions {
  /// Receiver-side frame bound (see FrameLimits).
  size_t max_payload_bytes = 64ull << 20;
};

/// \brief One reusable client connection to a net::WireServer.
class WireClient {
 public:
  explicit WireClient(std::string address, WireClientOptions options = {});
  ~WireClient();
  WireClient(WireClient&&) = delete;
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Establishes the connection now (otherwise the first call does).
  Status Connect();
  /// Drops the connection; the next call reconnects.
  void Close();
  bool connected() const { return fd_ >= 0; }
  const std::string& address() const { return address_; }

  /// Round-trips a ping (connectivity / liveness probe).
  Status Ping();

  /// Scores every workload remotely in one request; returns one
  /// Result<double> per batch, in order. The call-level Result is the
  /// transport/protocol outcome; per-workload failures (e.g. an empty
  /// workload under a fixed-length model) come back inside the vector.
  Result<std::vector<Result<double>>> ScoreWorkloads(
      std::string_view tenant,
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<core::WorkloadBatch>& batches);

  /// Serializes `model` and publishes it across every server shard under
  /// `name` (server default when empty). Returns the registry epoch now
  /// serving.
  Result<uint64_t> Publish(std::string_view name,
                           const core::LearnedWmpModel& model);

  /// Rolls `name` back to the previous registry epoch; returns it.
  Result<uint64_t> Rollback(std::string_view name);

  /// Service + server counters snapshot.
  Result<StatsResponse> Stats();

 private:
  /// Sends one request frame and reads its response, reconnecting and
  /// resending once when the failure provably preceded server-side
  /// execution (connect/write failures). `idempotent` additionally allows
  /// the resend after a failed response READ — safe for score/ping/stats,
  /// never for publish/rollback (the server may have applied them before
  /// the response was lost). kError frames convert to their carried
  /// Status.
  Result<Frame> RoundTrip(FrameType request, std::string payload,
                          FrameType expected_response,
                          bool idempotent = true);

  std::string address_;
  WireClientOptions options_;
  int fd_ = -1;
};

}  // namespace wmp::net

#endif  // WMP_NET_WIRE_CLIENT_H_
