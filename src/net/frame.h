#ifndef WMP_NET_FRAME_H_
#define WMP_NET_FRAME_H_

/// \file frame.h
/// Length-prefixed binary frame codec — the unit of the wire protocol.
///
/// Every message between net::WireClient and net::WireServer is one frame:
///
///   offset 0  u32  magic  0x31464D57 ("WMF1", little-endian)
///   offset 4  u8   type   (FrameType)
///   offset 5  u32  payload length in bytes
///   offset 9  payload    (opaque; see net/protocol.h for the encodings)
///
/// The magic lets a receiver reject a desynchronized or non-protocol peer
/// immediately instead of interpreting garbage as a length; the length
/// prefix is validated against `FrameLimits::max_payload_bytes` *before*
/// any payload byte is read, so an adversarial or corrupt header cannot
/// make the receiver allocate or block unboundedly.
///
/// The fd-based I/O helpers speak blocking POSIX descriptors (TCP or Unix
/// sockets; plain pipes work too, which the tests use). Both directions
/// handle partial transfers: `ReadFrame` loops until the header and payload
/// are complete, `WriteFrame` loops over short writes — the kernel is free
/// to split a frame at any byte boundary and the codec must not care.
/// Clean EOF *between* frames is reported as `StatusCode::kNotFound`
/// (a peer hanging up politely); EOF *inside* a frame is an IOError.

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace wmp::net {

/// Message kinds carried by a frame. Requests are even, their responses
/// odd, so a response type is always `request | 1`.
enum class FrameType : uint8_t {
  kPing = 0,
  kPong = 1,
  kScoreRequest = 2,
  kScoreResponse = 3,
  kPublishRequest = 4,
  kPublishResponse = 5,
  kStatsRequest = 6,
  kStatsResponse = 7,
  kRollbackRequest = 8,
  kRollbackResponse = 9,
  /// \name Pipelined scoring (net::AsyncWireClient <-> net::ReactorServer).
  ///
  /// Payload is a u32 correlation id followed by the plain
  /// ScoreRequest/ScoreResponse encoding. A client may have many of these
  /// in flight on one connection and the server answers in COMPLETION
  /// order, not request order — the correlation id is how responses find
  /// their request. The plain (non-pipelined) frame types above keep strict
  /// request/response ordering, which is what makes the blocking client a
  /// usable equivalence oracle against either server.
  /// @{
  kScoreRequestPipelined = 10,
  kScoreResponsePipelined = 11,
  /// @}
  /// \name Fleet control plane (net::FleetRouter <-> predictor nodes).
  ///
  /// kHealth is the router's liveness/epoch probe: the response carries
  /// the node's current registry epoch, so the router detects both a dead
  /// node (no response inside the deadline) and a node that silently
  /// diverged from the fleet's target epoch (restarted, missed a rollout).
  ///
  /// kStage/kCommit/kAbort are the two-phase publish. Stage carries a full
  /// PublishRequest payload; the node validates the artifact (checksum +
  /// deserialize) and parks it WITHOUT installing, answering with a
  /// ticket. Commit names the ticket and atomically installs the parked
  /// artifact (a PublishAll). Abort discards a parked artifact and is
  /// idempotent — the router's compensation path may abort a node that
  /// never staged. See net/fleet.h for the coordination protocol.
  /// @{
  kHealthRequest = 12,
  kHealthResponse = 13,
  kStageRequest = 14,
  kStageResponse = 15,
  kCommitRequest = 16,
  kCommitResponse = 17,
  kAbortRequest = 18,
  kAbortResponse = 19,
  /// @}
  /// Failure of one pipelined request: u32 correlation id + ErrorBody.
  /// Unlike kError it indicts a single in-flight request, not the stream.
  kErrorPipelined = 253,
  /// Server-side failure report: payload is a protocol::ErrorBody.
  kError = 255,
};

const char* FrameTypeName(FrameType type);

/// Fixed frame-header size: u32 magic + u8 type + u32 payload length.
/// Incremental decoders (the reactor) and header-crafting tests need the
/// number; the codec below is the only thing that interprets the bytes.
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 4;

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// Receiver-side bounds.
struct FrameLimits {
  /// Frames whose header announces more than this many payload bytes are
  /// rejected before any payload is read (default 64 MB — a full score
  /// request for a ~100k-query log fits comfortably).
  size_t max_payload_bytes = 64ull << 20;
};

/// Serializes a frame into a byte string (header + payload) — the exact
/// bytes WriteFrame puts on the wire.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Parses one complete frame from `buf`. Returns the frame and sets
/// `*consumed` to the bytes used. Fails with InvalidArgument on a bad
/// magic or an oversize announced length, and OutOfRange when `buf` holds
/// only a frame prefix (the streaming caller should read more bytes).
Result<Frame> DecodeFrame(std::string_view buf, const FrameLimits& limits,
                          size_t* consumed);

/// Writes one frame to a blocking descriptor, looping over short writes
/// and EINTR. Safe on sockets and pipes; socket writes suppress SIGPIPE.
Status WriteFrame(int fd, FrameType type, std::string_view payload);

/// Reads one frame from a blocking descriptor, looping over partial reads.
/// A clean EOF before the first header byte returns NotFound ("peer
/// disconnected"); EOF mid-frame, a bad magic, or an oversize length are
/// errors.
Result<Frame> ReadFrame(int fd, const FrameLimits& limits = {});

}  // namespace wmp::net

#endif  // WMP_NET_FRAME_H_
