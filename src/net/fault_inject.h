#ifndef WMP_NET_FAULT_INJECT_H_
#define WMP_NET_FAULT_INJECT_H_

/// \file fault_inject.h
/// Deterministic fault injection under the frame layer — the chaos engine
/// behind the fleet router's failure tests.
///
/// Every blocking frame read/write in src/net (ReadFrame/WriteFrame, i.e.
/// both wire clients and the blocking server) consults the process-global
/// armed FaultInjector, which may, per operation:
///
///   kDelay      sleep before performing the op (delay storms, slow peers)
///   kDrop       report a write as sent without sending it — the peer
///               waits for bytes that never come (tests read deadlines)
///   kTruncate   send a prefix of the frame, then reset the connection
///               (tests mid-payload truncation handling)
///   kBitFlip    flip one bit of the bytes actually sent (tests magic /
///               checksum validation at the receiver)
///   kReset      shut the connection down; the op fails like a peer crash
///
/// Faults fire deterministically: a plan is a SEEDED probability mix plus
/// an explicit script of {operation index -> fault} entries, and the
/// injector counts targeted operations — so a chaos test replays the exact
/// same fault sequence every run. No randomness ever leaks into a test's
/// pass/fail beyond what the seed fixes.
///
/// Production cost when disarmed: one relaxed atomic load per frame op.
///
/// Typical use (see tests/chaos_test.cc):
///
///   FaultPlan plan;
///   plan.seed = 7;
///   plan.script.push_back({.op_index = 3, .kind = FaultKind::kReset});
///   FaultInjector chaos(plan);
///   chaos.TargetFd(client_fd);   // only this connection suffers
///   chaos.Arm();
///   ... drive traffic; the 4th frame op on client_fd hits a reset ...
///   chaos.Disarm();
///
/// Thread-safety: all methods are safe from any thread; the op counter and
/// RNG advance under one mutex so concurrent connections draw a single
/// deterministic fault sequence.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "util/status.h"

namespace wmp::net {

enum class FaultKind : uint8_t {
  kNone = 0,
  kDelay,
  kDrop,      ///< writes only; a faulted read treats it as kDelay
  kTruncate,  ///< writes only; a faulted read treats it as kReset
  kBitFlip,   ///< writes only; a faulted read treats it as kReset
  kReset,
};

const char* FaultKindName(FaultKind kind);

/// One scripted fault: fire `kind` on the `op_index`-th targeted frame
/// operation (0-based, reads and writes share the counter).
struct ScriptedFault {
  uint64_t op_index = 0;
  FaultKind kind = FaultKind::kNone;
  uint32_t delay_ms = 0;   ///< kDelay; 0 uses FaultPlan::delay_ms
  size_t keep_bytes = 1;   ///< kTruncate: prefix bytes that still go out
  uint64_t bit = 0;        ///< kBitFlip: bit index (mod buffer bits)
};

/// A deterministic chaos plan: explicit script entries win; otherwise each
/// targeted op draws from the seeded RNG against the probability mix.
struct FaultPlan {
  uint64_t seed = 1;
  double delay_prob = 0.0;
  double drop_prob = 0.0;
  double truncate_prob = 0.0;
  double flip_prob = 0.0;
  double reset_prob = 0.0;
  uint32_t delay_ms = 5;  ///< sleep for probabilistic / scripted-0 delays
  std::vector<ScriptedFault> script;
  bool faults_reads = true;
  bool faults_writes = true;
};

struct FaultStats {
  uint64_t ops = 0;  ///< targeted frame operations seen
  uint64_t delays = 0;
  uint64_t drops = 0;
  uint64_t truncations = 0;
  uint64_t bitflips = 0;
  uint64_t resets = 0;
  uint64_t faults() const {
    return delays + drops + truncations + bitflips + resets;
  }
};

/// \brief Seeded, scriptable fault source armed under the frame codec.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs this injector as THE process-global one (at most one armed
  /// at a time; arming over another replaces it). Disarm (or destruction)
  /// uninstalls.
  void Arm();
  void Disarm();

  /// Restricts faults to specific descriptors. With no targets every
  /// frame op in the process is eligible — usually too blunt when client
  /// and server share the process, so tests target the fds they mean.
  void TargetFd(int fd);
  void UntargetFd(int fd);

  FaultStats stats() const;

  /// \name Frame-codec hooks (called from frame.cc; not for direct use).
  /// Perform the whole blocking operation with faults applied. Writes
  /// return OK for drops (the caller believes the bytes left) and an
  /// IOError for truncations/resets; reads delay or reset.
  /// @{
  Status InjectedWrite(int fd, const char* data, size_t n);
  /// Runs before the codec's own read loop; on a reset fault shuts the
  /// connection down and returns the error the read would then surface.
  Status BeforeRead(int fd);
  /// @}

 private:
  /// Draws the fault for the next targeted op (advances counter + RNG).
  /// `n` is the write size (0 for reads), used to size default truncation.
  ScriptedFault NextFault(size_t n);
  bool Targets(int fd) const;

  FaultPlan plan_;
  mutable std::mutex mutex_;
  std::unordered_set<int> target_fds_;
  uint64_t op_counter_ = 0;
  uint64_t rng_state_;
  FaultStats stats_;
};

/// The armed injector, or nullptr (the production state).
FaultInjector* ActiveFaultInjector();

}  // namespace wmp::net

#endif  // WMP_NET_FAULT_INJECT_H_
