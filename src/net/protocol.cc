#include "net/protocol.h"

#include <cstring>
#include <utility>

#include "util/hash.h"
#include "util/io.h"
#include "util/strings.h"
#include "workloads/wire_format.h"

namespace wmp::net {

namespace {

void WriteIndexVec(BinaryWriter* w, const std::vector<uint32_t>& v) {
  w->WriteU64(v.size());
  for (uint32_t x : v) w->WriteU32(x);
}

Result<std::vector<uint32_t>> ReadIndexVec(BinaryReader* r) {
  WMP_ASSIGN_OR_RETURN(const uint64_t n, r->ReadU64());
  if (n > r->remaining() / sizeof(uint32_t)) {
    return Status::InvalidArgument("index vector longer than its payload");
  }
  std::vector<uint32_t> v(static_cast<size_t>(n));
  for (uint32_t& x : v) {
    WMP_ASSIGN_OR_RETURN(x, r->ReadU32());
  }
  return v;
}

}  // namespace

std::string EncodeScoreRequest(
    std::string_view tenant,
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<core::WorkloadBatch>& batches) {
  BinaryWriter w;
  w.WriteString(std::string(tenant));
  workloads::SerializeRecordsWire(records, &w);
  w.WriteU64(batches.size());
  for (const core::WorkloadBatch& b : batches) {
    WriteIndexVec(&w, b.query_indices);
  }
  return w.buffer();
}

Result<ScoreRequest> DecodeScoreRequest(const std::string& payload) {
  BinaryReader r(payload);
  ScoreRequest request;
  WMP_ASSIGN_OR_RETURN(request.tenant, r.ReadString());
  WMP_ASSIGN_OR_RETURN(request.records,
                       workloads::DeserializeRecordsWire(&r));
  WMP_ASSIGN_OR_RETURN(const uint64_t n_batches, r.ReadU64());
  if (n_batches > r.remaining() / sizeof(uint64_t) + 1) {
    return Status::InvalidArgument("batch count exceeds payload");
  }
  request.batches.resize(static_cast<size_t>(n_batches));
  for (core::WorkloadBatch& b : request.batches) {
    WMP_ASSIGN_OR_RETURN(b.query_indices, ReadIndexVec(&r));
    // Validate at the protocol trust boundary, mirroring
    // ScoringService::Submit: indices must lie inside the request's own
    // record batch (downstream featurizers index it unchecked).
    for (uint32_t qi : b.query_indices) {
      if (qi >= request.records.size()) {
        return Status::OutOfRange(
            StrFormat("workload query index %u outside the %zu-record "
                      "batch",
                      qi, request.records.size()));
      }
    }
  }
  return request;
}

std::string EncodeScoreResponse(const ScoreResponse& response) {
  BinaryWriter w;
  w.WriteU64(response.ok.size());
  for (size_t i = 0; i < response.ok.size(); ++i) {
    w.WriteU8(response.ok[i]);
    if (response.ok[i]) {
      w.WriteDouble(response.predictions[i]);
    } else {
      w.WriteString(response.errors[i]);
    }
  }
  return w.buffer();
}

Result<ScoreResponse> DecodeScoreResponse(const std::string& payload) {
  BinaryReader r(payload);
  WMP_ASSIGN_OR_RETURN(const uint64_t n, r.ReadU64());
  // Every entry costs at least u8 ok + double prediction (or u32 string
  // length) = 9 wire bytes; a count the payload cannot hold must be
  // rejected BEFORE the three vectors below are sized from it.
  if (n > r.remaining() / 9 + 1) {
    return Status::InvalidArgument("score count exceeds payload");
  }
  ScoreResponse response;
  response.ok.resize(static_cast<size_t>(n));
  response.predictions.assign(static_cast<size_t>(n), 0.0);
  response.errors.resize(static_cast<size_t>(n));
  for (size_t i = 0; i < n; ++i) {
    WMP_ASSIGN_OR_RETURN(response.ok[i], r.ReadU8());
    if (response.ok[i]) {
      WMP_ASSIGN_OR_RETURN(response.predictions[i], r.ReadDouble());
    } else {
      WMP_ASSIGN_OR_RETURN(response.errors[i], r.ReadString());
    }
  }
  return response;
}

std::string EncodePublishRequest(const PublishRequest& request) {
  BinaryWriter w;
  w.WriteString(request.model_name);
  w.WriteString(request.model_bytes);
  // The encoder hashes the exact bytes it just wrote — callers cannot
  // forget the checksum, and any corruption between here and the
  // receiver's decode (the wire) is what the check exists to catch.
  w.WriteU64(ArtifactChecksum(request.model_bytes));
  return w.buffer();
}

Result<PublishRequest> DecodePublishRequest(const std::string& payload) {
  BinaryReader r(payload);
  PublishRequest request;
  WMP_ASSIGN_OR_RETURN(request.model_name, r.ReadString());
  WMP_ASSIGN_OR_RETURN(request.model_bytes, r.ReadString());
  WMP_ASSIGN_OR_RETURN(request.artifact_hash, r.ReadU64());
  // An empty name is valid at the protocol layer — the server substitutes
  // its default registry name (see WireServer::HandlePublish).
  if (request.model_bytes.empty()) {
    return Status::InvalidArgument("publish request carries no artifact");
  }
  // Integrity gate for rollouts: a publish whose artifact no longer hashes
  // to what the sender computed is rejected here, before the model is even
  // deserialized — so no shard swap and no registry epoch can come of it.
  const uint64_t computed = ArtifactChecksum(request.model_bytes);
  if (computed != request.artifact_hash) {
    return Status::InvalidArgument(StrFormat(
        "artifact checksum mismatch (wire %016llx, computed %016llx): "
        "model bytes were corrupted in transit",
        static_cast<unsigned long long>(request.artifact_hash),
        static_cast<unsigned long long>(computed)));
  }
  return request;
}

std::string EncodePublishResponse(const PublishResponse& response) {
  BinaryWriter w;
  w.WriteU64(response.registry_epoch);
  w.WriteU64(response.shards_swapped);
  return w.buffer();
}

Result<PublishResponse> DecodePublishResponse(const std::string& payload) {
  BinaryReader r(payload);
  PublishResponse response;
  WMP_ASSIGN_OR_RETURN(response.registry_epoch, r.ReadU64());
  WMP_ASSIGN_OR_RETURN(response.shards_swapped, r.ReadU64());
  return response;
}

std::string EncodeRollbackRequest(const RollbackRequest& request) {
  BinaryWriter w;
  w.WriteString(request.model_name);
  return w.buffer();
}

Result<RollbackRequest> DecodeRollbackRequest(const std::string& payload) {
  BinaryReader r(payload);
  RollbackRequest request;
  WMP_ASSIGN_OR_RETURN(request.model_name, r.ReadString());
  if (request.model_name.empty()) {
    return Status::InvalidArgument("rollback request has an empty model name");
  }
  return request;
}

std::string EncodeHealthRequest(const HealthRequest& request) {
  BinaryWriter w;
  w.WriteU64(request.nonce);
  return w.buffer();
}

Result<HealthRequest> DecodeHealthRequest(const std::string& payload) {
  BinaryReader r(payload);
  HealthRequest request;
  WMP_ASSIGN_OR_RETURN(request.nonce, r.ReadU64());
  return request;
}

std::string EncodeHealthResponse(const HealthResponse& response) {
  BinaryWriter w;
  w.WriteU64(response.nonce);
  w.WriteU64(response.registry_epoch);
  w.WriteU64(response.staged_ticket);
  w.WriteU64(response.queue_depth);
  return w.buffer();
}

Result<HealthResponse> DecodeHealthResponse(const std::string& payload) {
  BinaryReader r(payload);
  HealthResponse response;
  WMP_ASSIGN_OR_RETURN(response.nonce, r.ReadU64());
  WMP_ASSIGN_OR_RETURN(response.registry_epoch, r.ReadU64());
  WMP_ASSIGN_OR_RETURN(response.staged_ticket, r.ReadU64());
  WMP_ASSIGN_OR_RETURN(response.queue_depth, r.ReadU64());
  return response;
}

std::string EncodeStageResponse(const StageResponse& response) {
  BinaryWriter w;
  w.WriteU64(response.ticket);
  w.WriteU64(response.artifact_hash);
  return w.buffer();
}

Result<StageResponse> DecodeStageResponse(const std::string& payload) {
  BinaryReader r(payload);
  StageResponse response;
  WMP_ASSIGN_OR_RETURN(response.ticket, r.ReadU64());
  WMP_ASSIGN_OR_RETURN(response.artifact_hash, r.ReadU64());
  if (response.ticket == 0) {
    return Status::InvalidArgument("stage response carries ticket 0");
  }
  return response;
}

std::string EncodeTicketRequest(const TicketRequest& request) {
  BinaryWriter w;
  w.WriteU64(request.ticket);
  return w.buffer();
}

Result<TicketRequest> DecodeTicketRequest(const std::string& payload) {
  BinaryReader r(payload);
  TicketRequest request;
  WMP_ASSIGN_OR_RETURN(request.ticket, r.ReadU64());
  return request;
}

std::string EncodeAbortResponse(const AbortResponse& response) {
  BinaryWriter w;
  w.WriteU8(response.had_staged);
  return w.buffer();
}

Result<AbortResponse> DecodeAbortResponse(const std::string& payload) {
  BinaryReader r(payload);
  AbortResponse response;
  WMP_ASSIGN_OR_RETURN(response.had_staged, r.ReadU8());
  return response;
}

std::string EncodeRollbackResponse(const RollbackResponse& response) {
  BinaryWriter w;
  w.WriteU64(response.registry_epoch);
  w.WriteU64(response.shards_swapped);
  return w.buffer();
}

Result<RollbackResponse> DecodeRollbackResponse(const std::string& payload) {
  BinaryReader r(payload);
  RollbackResponse response;
  WMP_ASSIGN_OR_RETURN(response.registry_epoch, r.ReadU64());
  WMP_ASSIGN_OR_RETURN(response.shards_swapped, r.ReadU64());
  return response;
}

namespace {

// ServiceStats travels as a counted list of u64 fields so a newer server
// can append counters without breaking an older client (extras ignored;
// missing fields stay zero).
constexpr uint64_t kServiceStatsFields = 23;

void AppendServiceStats(BinaryWriter* w, const engine::ServiceStats& s) {
  w->WriteU64(kServiceStatsFields);
  w->WriteU64(s.submitted);
  w->WriteU64(s.completed);
  w->WriteU64(s.failed);
  w->WriteU64(s.flushes);
  w->WriteU64(s.flushes_full);
  w->WriteU64(s.flushes_adaptive);
  w->WriteU64(s.flushes_deadline);
  w->WriteU64(s.flushes_drain);
  w->WriteU64(s.cache_hits);
  w->WriteU64(s.cache_misses);
  w->WriteU64(s.template_cache_hits);
  w->WriteU64(s.template_cache_misses);
  w->WriteU64(s.models_published);
  w->WriteU64(s.template_entries_warmed);
  w->WriteU64(s.max_queue_depth);
  w->WriteU64(s.queue_depth);
  w->WriteU64(s.total_latency_us);
  w->WriteU64(s.max_latency_us);
  w->WriteU64(s.traverse_kernel_id);
  w->WriteU64(s.assign_rows);
  w->WriteU64(s.assign_bound_skips);
  w->WriteU64(s.assign_early_exits);
  w->WriteU64(s.assign_full_distances);
}

Result<engine::ServiceStats> ReadServiceStats(BinaryReader* r) {
  WMP_ASSIGN_OR_RETURN(const uint64_t n_fields, r->ReadU64());
  if (n_fields > r->remaining() / sizeof(uint64_t)) {
    return Status::InvalidArgument("stats field count exceeds payload");
  }
  std::vector<uint64_t> f(static_cast<size_t>(n_fields), 0);
  for (uint64_t& x : f) {
    WMP_ASSIGN_OR_RETURN(x, r->ReadU64());
  }
  const auto at = [&f](size_t i) -> uint64_t {
    return i < f.size() ? f[i] : 0;
  };
  engine::ServiceStats s;
  s.submitted = at(0);
  s.completed = at(1);
  s.failed = at(2);
  s.flushes = at(3);
  s.flushes_full = at(4);
  s.flushes_adaptive = at(5);
  s.flushes_deadline = at(6);
  s.flushes_drain = at(7);
  s.cache_hits = at(8);
  s.cache_misses = at(9);
  s.template_cache_hits = at(10);
  s.template_cache_misses = at(11);
  s.models_published = at(12);
  s.template_entries_warmed = at(13);
  s.max_queue_depth = at(14);
  s.queue_depth = at(15);
  s.total_latency_us = at(16);
  s.max_latency_us = at(17);
  s.traverse_kernel_id = at(18);
  s.assign_rows = at(19);
  s.assign_bound_skips = at(20);
  s.assign_early_exits = at(21);
  s.assign_full_distances = at(22);
  return s;
}

}  // namespace

std::string EncodeStatsResponse(const StatsResponse& response) {
  BinaryWriter w;
  AppendServiceStats(&w, response.service);
  w.WriteU64(response.server.connections_accepted);
  w.WriteU64(response.server.frames_served);
  w.WriteU64(response.server.protocol_errors);
  w.WriteU64(response.server.accept_failures);
  return w.buffer();
}

Result<StatsResponse> DecodeStatsResponse(const std::string& payload) {
  BinaryReader r(payload);
  StatsResponse response;
  WMP_ASSIGN_OR_RETURN(response.service, ReadServiceStats(&r));
  WMP_ASSIGN_OR_RETURN(response.server.connections_accepted, r.ReadU64());
  WMP_ASSIGN_OR_RETURN(response.server.frames_served, r.ReadU64());
  WMP_ASSIGN_OR_RETURN(response.server.protocol_errors, r.ReadU64());
  WMP_ASSIGN_OR_RETURN(response.server.accept_failures, r.ReadU64());
  return response;
}

std::string EncodeErrorBody(const ErrorBody& error) {
  BinaryWriter w;
  w.WriteU8(error.code);
  w.WriteString(error.message);
  return w.buffer();
}

ErrorBody DecodeErrorBody(const std::string& payload) {
  BinaryReader r(payload);
  ErrorBody error;
  auto code = r.ReadU8();
  auto message = code.ok() ? r.ReadString()
                           : Result<std::string>(code.status());
  if (code.ok() && message.ok()) {
    error.code = *code;
    error.message = *message;
  } else {
    error.code = static_cast<uint8_t>(StatusCode::kInternal);
    error.message = "unparseable error frame from peer";
  }
  return error;
}

uint64_t ArtifactChecksum(std::string_view model_bytes) {
  return util::HashBytes(model_bytes.data(), model_bytes.size(),
                         0x574D505055424C48ull);  // "WMPPUBLH"
}

std::string EncodePipelinedPayload(uint32_t correlation_id,
                                   std::string_view body) {
  std::string out;
  out.reserve(sizeof(correlation_id) + body.size());
  out.append(reinterpret_cast<const char*>(&correlation_id),
             sizeof(correlation_id));
  out.append(body.data(), body.size());
  return out;
}

Result<uint32_t> DecodePipelinedPayload(const std::string& payload,
                                        std::string* body) {
  if (payload.size() < sizeof(uint32_t)) {
    return Status::InvalidArgument(
        "pipelined payload too short for a correlation id");
  }
  uint32_t correlation_id = 0;
  std::memcpy(&correlation_id, payload.data(), sizeof(correlation_id));
  body->assign(payload, sizeof(correlation_id),
               payload.size() - sizeof(correlation_id));
  return correlation_id;
}

Status StatusFromError(const ErrorBody& error) {
  StatusCode code = static_cast<StatusCode>(error.code);
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kIOError:
    case StatusCode::kNotImplemented:
    case StatusCode::kInternal:
    case StatusCode::kDeadlineExceeded:
      break;
    default:
      code = StatusCode::kInternal;
  }
  if (code == StatusCode::kOk) code = StatusCode::kInternal;
  return Status(code, "server: " + error.message);
}

}  // namespace wmp::net
