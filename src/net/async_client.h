#ifndef WMP_NET_ASYNC_CLIENT_H_
#define WMP_NET_ASYNC_CLIENT_H_

/// \file async_client.h
/// Pipelined client for the event-loop server: keeps many score requests
/// in flight on ONE connection.
///
/// The blocking WireClient is strictly request→response: wire latency is
/// paid once per call, so a controller scoring workload-by-workload is
/// bounded by round trips, not by the service. This client sends
/// kScoreRequestPipelined frames tagged with a correlation id and lets the
/// server answer in COMPLETION order; a background reader thread matches
/// responses to their ids and fulfills the caller's futures. With a window
/// of N in-flight requests, N round trips overlap and the wire cost
/// amortizes to ~1/N per request — that is the whole perf story of the
/// reactor pairing (bench/wire_latency.cc measures it).
///
///   caller ──SubmitScore──▶ [corr id, frame, promise registered]
///                               │ (blocks only when the in-flight window
///                               │  is full — flow control, not latency)
///        socket ◀──────────────┘
///        socket ──▶ reader thread ──▶ promise.set_value, any order
///
/// Failure semantics: a kErrorPipelined frame fails exactly the one
/// request its correlation id names; a plain kError frame, an undecodable
/// response, or EOF is a STREAM failure — every outstanding future fails
/// and the connection is dead (no transparent reconnect: in-flight
/// requests may or may not have executed, and score calls are
/// re-issuable by the caller, who knows which ones it still needs).
///
/// Deadlines: with `request_timeout_ms` set, a request unanswered past its
/// deadline fails ITS OWN future with kDeadlineExceeded — the stream stays
/// up and other in-flight futures are untouched. The expired correlation
/// id is remembered so the response, if it eventually arrives, is dropped
/// quietly instead of being mistaken for a desynchronized stream (the
/// "unmatched correlation id" stream-death rule applies only to ids this
/// client never issued). Without the option a stalled server parks every
/// future forever — the failure mode this exists to kill.
///
/// Thread-safety: SubmitScore may be called from multiple threads; the
/// futures are independent. Close (or destruction) fails whatever is
/// still outstanding.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/workload.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "util/status.h"
#include "workloads/query_record.h"

namespace wmp::net {

struct AsyncWireClientOptions {
  /// Receiver-side frame bound (see FrameLimits).
  size_t max_payload_bytes = 64ull << 20;
  /// SubmitScore blocks while this many requests are unanswered. Deep
  /// enough to hide wire latency, shallow enough that one client cannot
  /// monopolize the server's flush windows.
  size_t max_inflight = 32;
  /// Bounds connect(2) at Connect time (0 = OS default; see ConnectTo).
  int connect_timeout_ms = 0;
  /// Per-request deadline: an unanswered request fails its own future
  /// with kDeadlineExceeded after this long, stream intact (0 = never).
  int request_timeout_ms = 0;
};

/// \brief Pipelined scoring connection to a net::ReactorServer.
class AsyncWireClient {
 public:
  /// Connects eagerly (a pipelined client with nothing to pipeline is
  /// useless, so there is no lazy mode).
  static Result<std::unique_ptr<AsyncWireClient>> Connect(
      const std::string& address, AsyncWireClientOptions options = {});
  ~AsyncWireClient();
  AsyncWireClient(const AsyncWireClient&) = delete;
  AsyncWireClient& operator=(const AsyncWireClient&) = delete;

  /// Sends one pipelined score request and returns a future for its
  /// response. Blocks only for window flow control (and the write itself);
  /// the future resolves whenever the server finishes — possibly before
  /// earlier submissions. Fails fast if the stream is already dead.
  Result<std::future<Result<ScoreResponse>>> SubmitScore(
      std::string_view tenant,
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<core::WorkloadBatch>& batches);

  /// Number of submitted-but-unanswered requests right now.
  size_t inflight() const;

  /// True until a stream-level failure (or Close) kills the connection.
  bool alive() const;

  /// Fails every outstanding future with a "client closed" status, closes
  /// the socket, joins the reader. Idempotent; also run by the destructor.
  void Close();

 private:
  AsyncWireClient(int fd, AsyncWireClientOptions options);
  void ReaderLoop();
  /// Expires overdue requests one by one (runs only with a deadline set).
  void TimerLoop();
  /// Fails every pending future with `status` and marks the stream dead.
  void FailAll(const Status& status);

  /// One in-flight request: its caller's promise plus its deadline
  /// (time_point::max() when deadlines are off).
  struct Pending {
    std::promise<Result<ScoreResponse>> promise;
    std::chrono::steady_clock::time_point deadline;
  };

  AsyncWireClientOptions options_;
  int fd_ = -1;
  std::thread reader_;
  std::thread timer_;

  mutable std::mutex mutex_;           // pendings_, next_correlation_, dead_
  std::condition_variable window_cv_;  // signaled as responses drain
  std::condition_variable timer_cv_;   // signaled on new deadline / death
  std::unordered_map<uint32_t, Pending> pendings_;
  /// Correlation ids whose futures already expired; the late response (if
  /// it ever comes) is discarded instead of indicting the stream.
  std::unordered_set<uint32_t> expired_;
  uint32_t next_correlation_ = 1;
  bool dead_ = false;
  Status death_status_;

  std::mutex write_mutex_;  // frame writes are atomic on the wire
};

}  // namespace wmp::net

#endif  // WMP_NET_ASYNC_CLIENT_H_
