#include "net/async_client.h"

#include <utility>

#include "net/socket.h"
#include "util/strings.h"

namespace wmp::net {

Result<std::unique_ptr<AsyncWireClient>> AsyncWireClient::Connect(
    const std::string& address, AsyncWireClientOptions options) {
  WMP_ASSIGN_OR_RETURN(const int fd, ConnectTo(address));
  // The socket stays BLOCKING: the reader thread parks in ReadFrame and
  // writes flow-control themselves via the in-flight window — only the
  // server side needs readiness multiplexing.
  return std::unique_ptr<AsyncWireClient>(
      new AsyncWireClient(fd, options));
}

AsyncWireClient::AsyncWireClient(int fd, AsyncWireClientOptions options)
    : options_(options), fd_(fd) {
  reader_ = std::thread([this] { ReaderLoop(); });
}

AsyncWireClient::~AsyncWireClient() { Close(); }

Result<std::future<Result<ScoreResponse>>> AsyncWireClient::SubmitScore(
    std::string_view tenant,
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<core::WorkloadBatch>& batches) {
  uint32_t correlation_id = 0;
  std::future<Result<ScoreResponse>> future;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    window_cv_.wait(lock, [this] {
      return dead_ || pendings_.size() < options_.max_inflight;
    });
    if (dead_) return death_status_;
    correlation_id = next_correlation_++;
    if (next_correlation_ == 0) next_correlation_ = 1;  // 0 = never issued
    auto [it, inserted] =
        pendings_.emplace(correlation_id,
                          std::promise<Result<ScoreResponse>>());
    future = it->second.get_future();
  }
  const std::string payload = EncodePipelinedPayload(
      correlation_id, EncodeScoreRequest(tenant, records, batches));
  Status written;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    written =
        WriteFrame(fd_, FrameType::kScoreRequestPipelined, payload);
  }
  if (!written.ok()) {
    // The stream is broken for everyone, not just this request; the
    // reader notices EOF too, but whoever sees it first reports it.
    FailAll(written);
    return written;
  }
  return future;
}

void AsyncWireClient::ReaderLoop() {
  FrameLimits limits;
  limits.max_payload_bytes = options_.max_payload_bytes;
  for (;;) {
    auto frame = ReadFrame(fd_, limits);
    if (!frame.ok()) {
      // NotFound = clean EOF. Either way the stream is over; anything
      // unanswered will never be answered.
      FailAll(frame.status().IsNotFound()
                  ? Status::IOError(
                        "server closed the connection with requests in "
                        "flight")
                  : frame.status());
      return;
    }
    switch (frame->type) {
      case FrameType::kScoreResponsePipelined:
      case FrameType::kErrorPipelined: {
        std::string body;
        auto correlation_id = DecodePipelinedPayload(frame->payload, &body);
        if (!correlation_id.ok()) {
          FailAll(correlation_id.status());
          return;
        }
        Result<ScoreResponse> outcome = [&]() -> Result<ScoreResponse> {
          if (frame->type == FrameType::kErrorPipelined) {
            return StatusFromError(DecodeErrorBody(body));
          }
          return DecodeScoreResponse(body);
        }();
        std::promise<Result<ScoreResponse>> promise;
        bool matched = false;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          auto it = pendings_.find(*correlation_id);
          if (it != pendings_.end()) {
            promise = std::move(it->second);
            pendings_.erase(it);
            matched = true;
          }
        }
        if (!matched) {
          // A response for a request we never made: the server and client
          // disagree about the stream — unrecoverable.
          FailAll(Status::Internal(StrFormat(
              "unmatched correlation id %u on pipelined response",
              *correlation_id)));
          return;
        }
        promise.set_value(std::move(outcome));
        window_cv_.notify_one();
        break;
      }
      case FrameType::kError:
        // Stream-level indictment (e.g. a frame the server could not even
        // attribute to a request).
        FailAll(StatusFromError(DecodeErrorBody(frame->payload)));
        return;
      default:
        FailAll(Status::Internal(
            StrFormat("unexpected %s frame on pipelined stream",
                      FrameTypeName(frame->type))));
        return;
    }
  }
}

void AsyncWireClient::FailAll(const Status& status) {
  std::unordered_map<uint32_t, std::promise<Result<ScoreResponse>>> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!dead_) {
      dead_ = true;
      death_status_ = status;
    }
    orphans.swap(pendings_);
  }
  for (auto& [correlation_id, promise] : orphans) {
    promise.set_value(death_status_);
  }
  window_cv_.notify_all();
}

size_t AsyncWireClient::inflight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pendings_.size();
}

bool AsyncWireClient::alive() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !dead_;
}

void AsyncWireClient::Close() {
  FailAll(Status::FailedPrecondition("client closed"));
  // CloseConnection shuts down both directions first, waking the reader
  // out of a parked ReadFrame.
  CloseConnection(fd_);
  if (reader_.joinable()) reader_.join();
  fd_ = -1;
}

}  // namespace wmp::net
