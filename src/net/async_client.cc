#include "net/async_client.h"

#include <utility>

#include "net/socket.h"
#include "util/strings.h"

namespace wmp::net {

Result<std::unique_ptr<AsyncWireClient>> AsyncWireClient::Connect(
    const std::string& address, AsyncWireClientOptions options) {
  WMP_ASSIGN_OR_RETURN(const int fd,
                       ConnectTo(address, options.connect_timeout_ms));
  // The socket stays BLOCKING: the reader thread parks in ReadFrame and
  // writes flow-control themselves via the in-flight window — only the
  // server side needs readiness multiplexing.
  return std::unique_ptr<AsyncWireClient>(
      new AsyncWireClient(fd, options));
}

AsyncWireClient::AsyncWireClient(int fd, AsyncWireClientOptions options)
    : options_(options), fd_(fd) {
  reader_ = std::thread([this] { ReaderLoop(); });
  if (options_.request_timeout_ms > 0) {
    timer_ = std::thread([this] { TimerLoop(); });
  }
}

AsyncWireClient::~AsyncWireClient() { Close(); }

Result<std::future<Result<ScoreResponse>>> AsyncWireClient::SubmitScore(
    std::string_view tenant,
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<core::WorkloadBatch>& batches) {
  uint32_t correlation_id = 0;
  std::future<Result<ScoreResponse>> future;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    window_cv_.wait(lock, [this] {
      return dead_ || pendings_.size() < options_.max_inflight;
    });
    if (dead_) return death_status_;
    correlation_id = next_correlation_++;
    if (next_correlation_ == 0) next_correlation_ = 1;  // 0 = never issued
    Pending pending;
    pending.deadline =
        options_.request_timeout_ms > 0
            ? std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.request_timeout_ms)
            : std::chrono::steady_clock::time_point::max();
    auto [it, inserted] = pendings_.emplace(correlation_id,
                                            std::move(pending));
    future = it->second.promise.get_future();
  }
  timer_cv_.notify_one();  // a new (possibly earliest) deadline exists
  const std::string payload = EncodePipelinedPayload(
      correlation_id, EncodeScoreRequest(tenant, records, batches));
  Status written;
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    written =
        WriteFrame(fd_, FrameType::kScoreRequestPipelined, payload);
  }
  if (!written.ok()) {
    // The stream is broken for everyone, not just this request; the
    // reader notices EOF too, but whoever sees it first reports it.
    FailAll(written);
    return written;
  }
  return future;
}

void AsyncWireClient::ReaderLoop() {
  FrameLimits limits;
  limits.max_payload_bytes = options_.max_payload_bytes;
  for (;;) {
    auto frame = ReadFrame(fd_, limits);
    if (!frame.ok()) {
      // NotFound = clean EOF. Either way the stream is over; anything
      // unanswered will never be answered.
      FailAll(frame.status().IsNotFound()
                  ? Status::IOError(
                        "server closed the connection with requests in "
                        "flight")
                  : frame.status());
      return;
    }
    switch (frame->type) {
      case FrameType::kScoreResponsePipelined:
      case FrameType::kErrorPipelined: {
        std::string body;
        auto correlation_id = DecodePipelinedPayload(frame->payload, &body);
        if (!correlation_id.ok()) {
          FailAll(correlation_id.status());
          return;
        }
        Result<ScoreResponse> outcome = [&]() -> Result<ScoreResponse> {
          if (frame->type == FrameType::kErrorPipelined) {
            return StatusFromError(DecodeErrorBody(body));
          }
          return DecodeScoreResponse(body);
        }();
        std::promise<Result<ScoreResponse>> promise;
        bool matched = false;
        bool was_expired = false;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          auto it = pendings_.find(*correlation_id);
          if (it != pendings_.end()) {
            promise = std::move(it->second.promise);
            pendings_.erase(it);
            matched = true;
          } else if (expired_.erase(*correlation_id) > 0) {
            // The deadline already failed this request's future; the slow
            // answer is dropped and the stream carries on — lateness is
            // not desynchronization.
            was_expired = true;
          }
        }
        if (was_expired) break;
        if (!matched) {
          // A response for a request we never made: the server and client
          // disagree about the stream — unrecoverable.
          FailAll(Status::Internal(StrFormat(
              "unmatched correlation id %u on pipelined response",
              *correlation_id)));
          return;
        }
        promise.set_value(std::move(outcome));
        window_cv_.notify_one();
        break;
      }
      case FrameType::kError:
        // Stream-level indictment (e.g. a frame the server could not even
        // attribute to a request).
        FailAll(StatusFromError(DecodeErrorBody(frame->payload)));
        return;
      default:
        FailAll(Status::Internal(
            StrFormat("unexpected %s frame on pipelined stream",
                      FrameTypeName(frame->type))));
        return;
    }
  }
}

void AsyncWireClient::TimerLoop() {
  const auto never = std::chrono::steady_clock::time_point::max();
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (dead_) return;
    auto earliest = never;
    for (const auto& [correlation_id, pending] : pendings_) {
      if (pending.deadline < earliest) earliest = pending.deadline;
    }
    if (earliest == never) {
      timer_cv_.wait(lock);
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now < earliest) {
      timer_cv_.wait_until(lock, earliest);
      continue;
    }
    // Expire every overdue request: fail ITS future, remember its id so
    // the eventual response is dropped instead of killing the stream.
    std::vector<std::promise<Result<ScoreResponse>>> overdue;
    for (auto it = pendings_.begin(); it != pendings_.end();) {
      if (it->second.deadline <= now) {
        expired_.insert(it->first);
        overdue.push_back(std::move(it->second.promise));
        it = pendings_.erase(it);
      } else {
        ++it;
      }
    }
    lock.unlock();
    for (auto& promise : overdue) {
      promise.set_value(Status::DeadlineExceeded(
          StrFormat("no response within %d ms (stream still up; only this "
                    "request failed)",
                    options_.request_timeout_ms)));
    }
    window_cv_.notify_all();
    lock.lock();
  }
}

void AsyncWireClient::FailAll(const Status& status) {
  std::unordered_map<uint32_t, Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!dead_) {
      dead_ = true;
      death_status_ = status;
    }
    orphans.swap(pendings_);
    expired_.clear();
  }
  for (auto& [correlation_id, pending] : orphans) {
    pending.promise.set_value(death_status_);
  }
  window_cv_.notify_all();
  timer_cv_.notify_all();
}

size_t AsyncWireClient::inflight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pendings_.size();
}

bool AsyncWireClient::alive() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !dead_;
}

void AsyncWireClient::Close() {
  FailAll(Status::FailedPrecondition("client closed"));
  // CloseConnection shuts down both directions first, waking the reader
  // out of a parked ReadFrame; FailAll already woke the timer.
  CloseConnection(fd_);
  if (reader_.joinable()) reader_.join();
  if (timer_.joinable()) timer_.join();
  fd_ = -1;
}

}  // namespace wmp::net
