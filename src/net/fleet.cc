#include "net/fleet.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "net/backoff.h"
#include "net/protocol.h"
#include "util/hash.h"
#include "util/io.h"
#include "util/strings.h"

namespace wmp::net {

const char* NodeHealthName(NodeHealth health) {
  switch (health) {
    case NodeHealth::kHealthy: return "healthy";
    case NodeHealth::kSuspect: return "suspect";
    case NodeHealth::kDown: return "down";
    case NodeHealth::kProbing: return "probing";
  }
  return "unknown";
}

FleetRouter::FleetRouter(std::vector<std::string> node_addresses,
                         FleetRouterOptions options)
    : options_(options) {
  nodes_.reserve(node_addresses.size());
  for (std::string& address : node_addresses) {
    auto node = std::make_unique<Node>();
    node->address = std::move(address);
    nodes_.push_back(std::move(node));
  }
}

FleetRouter::~FleetRouter() { Stop(); }

Status FleetRouter::Start() {
  {
    std::lock_guard<std::mutex> lock(probe_mutex_);
    if (started_) return Status::OK();
    started_ = true;
    stopping_ = false;
  }
  // Health states start from evidence: one synchronous sweep before any
  // traffic, so a fleet that is fully up routes healthy immediately and a
  // dead node is down before the first client call wastes a deadline.
  ProbeNow();
  if (options_.probe_interval_ms > 0) {
    probe_thread_ = std::thread([this] { ProbeLoop(); });
  }
  return Status::OK();
}

void FleetRouter::Stop() {
  {
    std::lock_guard<std::mutex> lock(probe_mutex_);
    if (!started_) return;
    stopping_ = true;
  }
  probe_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
  for (auto& node : nodes_) {
    std::lock_guard<std::mutex> lock(node->conn_mutex);
    if (node->pipe) node->pipe->Close();
    node->pipe.reset();
    node->control.reset();
  }
  std::lock_guard<std::mutex> lock(probe_mutex_);
  started_ = false;
}

void FleetRouter::ProbeLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(probe_mutex_);
      probe_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.probe_interval_ms),
          [this] { return stopping_; });
      if (stopping_) return;
    }
    ProbeNow();
  }
}

void FleetRouter::ProbeNow() {
  for (auto& node : nodes_) {
    (void)ProbeNode(node.get());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.probe_sweeps++;
}

Status FleetRouter::ProbeNode(Node* node) {
  uint64_t nonce = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    nonce = probe_nonce_++;
    // The probe thread adopting a down node is the ONLY way out of down.
    if (node->health == NodeHealth::kDown) node->health = NodeHealth::kProbing;
  }
  auto health = WithControl(
      node, [nonce](WireClient* control) { return control->Health(nonce); });
  if (!health.ok()) {
    MarkFailure(node, OutcomeKind::kProbe);
    return health.status();
  }
  MarkSuccess(node, OutcomeKind::kProbe);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    node->observed_epoch = health->registry_epoch;
  }
  // Observe even epoch 0 (node up, no model): "fresh node among published
  // peers" is precisely a mixed-epoch fleet the map must flag.
  epoch_map_.Observe(node->address, health->registry_epoch);
  return Status::OK();
}

template <typename Op>
auto FleetRouter::WithControl(Node* node, Op&& op)
    -> decltype(op(static_cast<WireClient*>(nullptr))) {
  std::lock_guard<std::mutex> lock(node->conn_mutex);
  if (!node->control) {
    WireClientOptions copts;
    copts.max_payload_bytes = options_.max_payload_bytes;
    copts.connect_timeout_ms = options_.connect_timeout_ms;
    copts.read_timeout_ms = options_.control_timeout_ms;
    copts.write_timeout_ms = options_.control_timeout_ms;
    // One attempt: retry policy belongs to the router's state machine,
    // not buried inside the per-node client.
    copts.max_attempts = 1;
    copts.jitter_seed = options_.seed;
    node->control = std::make_unique<WireClient>(node->address, copts);
  }
  auto outcome = op(node->control.get());
  if (!outcome.ok() && !node->control->connected()) {
    node->control.reset();  // transport died; reconnect fresh next time
  }
  return outcome;
}

void FleetRouter::MarkSuccess(Node* node, OutcomeKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  node->consecutive_failures = 0;
  node->health = NodeHealth::kHealthy;
  if (kind == OutcomeKind::kScore) node->scores_ok++;
  if (kind == OutcomeKind::kProbe) node->probes_ok++;
}

void FleetRouter::MarkFailure(Node* node, OutcomeKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  node->consecutive_failures++;
  if (kind == OutcomeKind::kScore) node->scores_failed++;
  if (kind == OutcomeKind::kProbe) node->probes_failed++;
  if (node->health == NodeHealth::kProbing) {
    // A probing node that fails again was down and stays down.
    node->health = NodeHealth::kDown;
  } else if (node->consecutive_failures >= options_.down_after_failures) {
    node->health = NodeHealth::kDown;
  } else if (node->health == NodeHealth::kHealthy) {
    node->health = NodeHealth::kSuspect;
  }
}

FleetRouter::Node* FleetRouter::PickNode(uint64_t tenant_hash,
                                         const std::vector<Node*>& tried) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Preference tiers: healthy > suspect > probing (unknown beats known-
  // dead) > down (the absolute last resort — a wrong "down" verdict must
  // not fail a client call when no better replica exists).
  std::vector<Node*> tiers[4];
  for (const auto& node : nodes_) {
    if (std::find(tried.begin(), tried.end(), node.get()) != tried.end()) {
      continue;
    }
    switch (node->health) {
      case NodeHealth::kHealthy: tiers[0].push_back(node.get()); break;
      case NodeHealth::kSuspect: tiers[1].push_back(node.get()); break;
      case NodeHealth::kProbing: tiers[2].push_back(node.get()); break;
      case NodeHealth::kDown: tiers[3].push_back(node.get()); break;
    }
  }
  for (const auto& tier : tiers) {
    // Hash-pick inside the tier: tenant affinity when everything is
    // healthy, deterministic spread when not.
    if (!tier.empty()) return tier[tenant_hash % tier.size()];
  }
  return nullptr;
}

Result<std::shared_ptr<AsyncWireClient>> FleetRouter::EnsurePipe(Node* node) {
  std::lock_guard<std::mutex> lock(node->conn_mutex);
  if (node->pipe && node->pipe->alive()) return node->pipe;
  AsyncWireClientOptions popts;
  popts.max_payload_bytes = options_.max_payload_bytes;
  popts.max_inflight = options_.max_inflight;
  popts.connect_timeout_ms = options_.connect_timeout_ms;
  popts.request_timeout_ms = options_.request_timeout_ms;
  WMP_ASSIGN_OR_RETURN(auto pipe, AsyncWireClient::Connect(node->address,
                                                           popts));
  node->pipe = std::shared_ptr<AsyncWireClient>(std::move(pipe));
  return node->pipe;
}

Result<std::vector<Result<double>>> FleetRouter::ScoreOnNode(
    Node* node, std::string_view tenant,
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<core::WorkloadBatch>& batches) {
  WMP_ASSIGN_OR_RETURN(std::shared_ptr<AsyncWireClient> pipe,
                       EnsurePipe(node));
  WMP_ASSIGN_OR_RETURN(std::future<Result<ScoreResponse>> future,
                       pipe->SubmitScore(tenant, records, batches));
  Result<ScoreResponse> response = future.get();
  if (!response.ok()) return response.status();
  if (response->size() != batches.size()) {
    return Status::Internal(
        StrFormat("node %s answered %zu workloads for a %zu-workload "
                  "request",
                  node->address.c_str(), response->size(), batches.size()));
  }
  std::vector<Result<double>> outcomes;
  outcomes.reserve(response->size());
  for (size_t i = 0; i < response->size(); ++i) {
    if (response->ok[i]) {
      outcomes.emplace_back(response->predictions[i]);
    } else {
      outcomes.emplace_back(Status::Internal(response->errors[i]));
    }
  }
  return outcomes;
}

Result<std::vector<Result<double>>> FleetRouter::ScoreWorkloads(
    std::string_view tenant,
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<core::WorkloadBatch>& batches) {
  const uint64_t tenant_hash =
      util::HashBytes(tenant.data(), tenant.size(), options_.seed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.scores++;
  }
  uint64_t jitter_state = tenant_hash ^ options_.seed;
  std::vector<Node*> tried;
  Status last_error = Status::IOError("no fleet nodes configured");
  const int attempts =
      options_.max_score_attempts < 1 ? 1 : options_.max_score_attempts;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        counters_.score_retries++;
      }
      const uint32_t delay_ms =
          BackoffDelayMs(&jitter_state, attempt - 1,
                         options_.backoff_base_ms, options_.backoff_cap_ms);
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
    }
    Node* node = PickNode(tenant_hash, tried);
    if (node == nullptr) {
      // Every node has been tried this call; clear the exclusion list and
      // re-approach the least-bad candidate after the backoff above.
      tried.clear();
      node = PickNode(tenant_hash, tried);
    }
    if (node == nullptr) {
      last_error = Status::IOError("fleet has no nodes");
      continue;
    }
    auto outcome = ScoreOnNode(node, tenant, records, batches);
    if (outcome.ok()) {
      MarkSuccess(node, OutcomeKind::kScore);
      return outcome;
    }
    MarkFailure(node, OutcomeKind::kScore);
    tried.push_back(node);
    last_error = outcome.status();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.score_failures++;
  }
  return last_error;
}

FleetRolloutReport FleetRouter::PublishAll(
    std::string_view name, const core::LearnedWmpModel& model) {
  std::lock_guard<std::mutex> rollout_lock(rollout_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.publishes++;
  }
  FleetRolloutReport report;
  report.nodes.resize(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    report.nodes[i].address = nodes_[i]->address;
  }
  if (nodes_.empty()) {
    report.failure = "fleet has no nodes";
    return report;
  }
  BinaryWriter artifact;
  if (Status st = model.Serialize(&artifact); !st.ok()) {
    report.failure = "artifact serialization failed: " + st.ToString();
    return report;
  }
  // Serialized exactly once: every node stages the SAME bytes, so the
  // per-node checksum (DecodePublishRequest) plus the fleet-wide epoch
  // check below make "all nodes serve the identical artifact" verifiable.
  const std::string& bytes = artifact.buffer();

  // ---- Phase 1: stage on every node (installs nothing anywhere). ----
  bool stage_ok = true;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    Node* node = nodes_[i].get();
    FleetNodeRollout& entry = report.nodes[i];
    auto staged = WithControl(node, [&](WireClient* control) {
      return control->Stage(name, bytes);
    });
    if (staged.ok()) {
      entry.staged = true;
      entry.ticket = staged->ticket;
      MarkSuccess(node, OutcomeKind::kControl);
    } else {
      entry.error = staged.status().ToString();
      stage_ok = false;
      MarkFailure(node, OutcomeKind::kControl);
    }
  }
  if (!stage_ok) {
    // Compensation is cheap here: nothing installed, so aborting the
    // staged copies returns the fleet to exactly its prior state.
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (!report.nodes[i].staged) continue;
      auto aborted = WithControl(nodes_[i].get(), [&](WireClient* control) {
        return control->Abort(report.nodes[i].ticket);
      });
      if (aborted.ok()) report.nodes[i].aborted = true;
    }
    report.failure =
        "stage phase failed; rollout aborted, no node changed epoch";
    return report;
  }

  // ---- Phase 2: commit everywhere. ----
  size_t failed_at = nodes_.size();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    Node* node = nodes_[i].get();
    FleetNodeRollout& entry = report.nodes[i];
    auto committed = WithControl(node, [&](WireClient* control) {
      return control->Commit(entry.ticket);
    });
    if (committed.ok()) {
      entry.committed = true;
      entry.epoch = committed->registry_epoch;
      MarkSuccess(node, OutcomeKind::kControl);
    } else {
      entry.error = committed.status().ToString();
      MarkFailure(node, OutcomeKind::kControl);
      failed_at = i;
      break;
    }
  }
  if (failed_at < nodes_.size()) {
    // Compensate: already-committed nodes roll back to the prior epoch,
    // still-staged nodes abort. Either way no node keeps the new model.
    for (size_t i = 0; i < failed_at; ++i) {
      Node* node = nodes_[i].get();
      FleetNodeRollout& entry = report.nodes[i];
      auto rolled = WithControl(node, [&](WireClient* control) {
        return control->Rollback(name);
      });
      if (rolled.ok()) {
        entry.compensated = true;
        entry.epoch = *rolled;
        epoch_map_.Observe(node->address, entry.epoch);
      } else {
        entry.error = "compensating rollback failed: " +
                      rolled.status().ToString();
      }
    }
    // The failed node itself is ambiguous: its commit response was lost,
    // so the install may or may not have happened. Ask the node — a
    // consumed ticket plus an epoch that moved off the last-observed one
    // means the commit landed and must roll back; a still-parked ticket
    // (or an unreachable node that never saw the commit) means an abort
    // restores the prior state. This is why probes feed observed_epoch:
    // it is the "before" picture this comparison needs.
    {
      Node* node = nodes_[failed_at].get();
      FleetNodeRollout& entry = report.nodes[failed_at];
      uint64_t prior_epoch = 0;
      uint64_t nonce = 0;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        prior_epoch = node->observed_epoch;
        nonce = probe_nonce_++;
      }
      auto health = WithControl(node, [nonce](WireClient* control) {
        return control->Health(nonce);
      });
      const bool committed_after_all = health.ok() &&
                                       health->staged_ticket != entry.ticket &&
                                       health->registry_epoch != prior_epoch;
      if (committed_after_all) {
        auto rolled = WithControl(node, [&](WireClient* control) {
          return control->Rollback(name);
        });
        if (rolled.ok()) {
          entry.compensated = true;
          entry.epoch = *rolled;
          epoch_map_.Observe(node->address, entry.epoch);
        } else {
          entry.error += "; compensating rollback failed: " +
                         rolled.status().ToString();
        }
      } else {
        // Ticket 0: discard whatever is parked — the node may have died
        // between our stage and this abort, leaving us without a ticket.
        auto aborted = WithControl(node, [](WireClient* control) {
          return control->Abort(0);
        });
        if (aborted.ok()) entry.aborted = true;
      }
    }
    for (size_t i = failed_at + 1; i < nodes_.size(); ++i) {
      auto aborted = WithControl(nodes_[i].get(), [&](WireClient* control) {
        return control->Abort(report.nodes[i].ticket);
      });
      if (aborted.ok()) report.nodes[i].aborted = true;
    }
    report.failure = StrFormat(
        "commit failed on %s; committed nodes rolled back, staged nodes "
        "aborted",
        nodes_[failed_at]->address.c_str());
    return report;
  }

  report.ok = true;
  report.epoch = report.nodes[0].epoch;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const FleetNodeRollout& entry = report.nodes[i];
    {
      std::lock_guard<std::mutex> lock(mutex_);
      nodes_[i]->observed_epoch = entry.epoch;
    }
    epoch_map_.Observe(entry.address, entry.epoch);
    if (entry.epoch != report.epoch) {
      // All commits succeeded but epochs disagree: the nodes had already
      // diverged BEFORE this rollout. The rollout stands; flag loudly.
      report.failure = StrFormat(
          "warning: fleet epochs diverged before this rollout (%s is on "
          "%llu, fleet target %llu)",
          entry.address.c_str(),
          static_cast<unsigned long long>(entry.epoch),
          static_cast<unsigned long long>(report.epoch));
    }
  }
  epoch_map_.SetTarget(report.epoch);
  return report;
}

FleetRolloutReport FleetRouter::RollbackAll(std::string_view name) {
  std::lock_guard<std::mutex> rollout_lock(rollout_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.rollbacks++;
  }
  FleetRolloutReport report;
  report.nodes.resize(nodes_.size());
  bool all_ok = !nodes_.empty();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    Node* node = nodes_[i].get();
    FleetNodeRollout& entry = report.nodes[i];
    entry.address = node->address;
    auto rolled = WithControl(node, [&](WireClient* control) {
      return control->Rollback(name);
    });
    if (rolled.ok()) {
      entry.committed = true;
      entry.epoch = *rolled;
      MarkSuccess(node, OutcomeKind::kControl);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        node->observed_epoch = entry.epoch;
      }
      epoch_map_.Observe(node->address, entry.epoch);
    } else {
      entry.error = rolled.status().ToString();
      all_ok = false;
      MarkFailure(node, OutcomeKind::kControl);
    }
  }
  report.ok = all_ok;
  if (all_ok) {
    report.epoch = report.nodes[0].epoch;
    epoch_map_.SetTarget(report.epoch);
  } else {
    report.failure =
        "rollback did not reach every node; fleet may be on mixed epochs "
        "— probe and re-drive (each node keeps its registry history)";
  }
  return report;
}

std::vector<FleetNodeStatus> FleetRouter::Nodes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FleetNodeStatus> statuses;
  statuses.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    FleetNodeStatus status;
    status.address = node->address;
    status.health = node->health;
    status.consecutive_failures = node->consecutive_failures;
    status.observed_epoch = node->observed_epoch;
    status.scores_ok = node->scores_ok;
    status.scores_failed = node->scores_failed;
    status.probes_ok = node->probes_ok;
    status.probes_failed = node->probes_failed;
    statuses.push_back(std::move(status));
  }
  return statuses;
}

FleetRouterCounters FleetRouter::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

}  // namespace wmp::net
