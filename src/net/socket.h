#ifndef WMP_NET_SOCKET_H_
#define WMP_NET_SOCKET_H_

/// \file socket.h
/// Address parsing and socket setup shared by the wire-protocol endpoints:
/// the blocking net::WireServer/net::WireClient pair and the event-loop
/// net::ReactorServer/net::AsyncWireClient pair.
///
/// Addresses come in two spellings:
///
///   "unix:/path/to.sock"   a Unix-domain stream socket (the deployment
///                          default for a predictor co-located with its
///                          DBMS — no TCP stack on the hot path)
///   "host:port"            IPv4 TCP; "127.0.0.1:0" binds an ephemeral
///                          port, reported back by Listener::port()
///
/// Everything here is thin POSIX. Sockets are created blocking (what the
/// thread-per-connection server wants); the reactor flips its listener and
/// every accepted connection to nonblocking via SetNonBlocking and drives
/// them from one poll/epoll loop (see reactor_server.h).

#include <sys/types.h>

#include <string>

#include "util/status.h"

namespace wmp::net {

/// A bound, listening server socket plus the bookkeeping to tear it down.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept { *this = std::move(other); }
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on `address` ("unix:PATH" or "host:port"). A Unix
  /// path is unlinked first (a crashed predecessor's stale socket must not
  /// block a restart) and unlinked again on Close.
  Status Listen(const std::string& address, int backlog = 16);

  /// Blocks until a client connects; returns the connection fd. Fails with
  /// FailedPrecondition once Close() has been called (the accept loop's
  /// shutdown signal).
  Result<int> Accept();

  /// Closes the listening socket (wakes a blocked Accept) and removes the
  /// Unix socket file. Idempotent.
  void Close();

  bool listening() const { return fd_ >= 0; }
  /// Raw listening descriptor — the reactor registers it with its poller
  /// and accepts nonblocking; -1 when not listening. The Listener keeps
  /// ownership (Close() still tears it down).
  int fd() const { return fd_; }
  /// Resolved TCP port (meaningful after Listen on "host:0"); 0 for Unix.
  int port() const { return port_; }
  /// The address clients should connect to (ephemeral port resolved).
  const std::string& address() const { return address_; }

 private:
  int fd_ = -1;
  int port_ = 0;
  std::string address_;
  std::string unix_path_;  // empty for TCP
};

/// Connects a blocking stream socket to `address`; returns the fd.
/// With `timeout_ms > 0` the connect itself is bounded: the socket is
/// flipped nonblocking, connect(2) is raced against a poll deadline, and
/// an unreachable or black-holed peer surfaces as kDeadlineExceeded
/// instead of hanging for the kernel's SYN-retry eternity. The returned
/// fd is blocking either way.
Result<int> ConnectTo(const std::string& address, int timeout_ms = 0);

/// Arms SO_RCVTIMEO / SO_SNDTIMEO on `fd` (0 disables a direction). Once
/// armed, a stalled read/write fails with EAGAIN, which ReadSome/SendSome
/// callers surface as kDeadlineExceeded. A no-op on non-socket
/// descriptors (pipes in tests), so frame I/O code need not care.
Status SetIoDeadlines(int fd, int recv_timeout_ms, int send_timeout_ms);

/// \name Shared low-level I/O — the ONE place src/net handles SIGPIPE and
/// EINTR, instead of per-call-site patches.
///
/// Every byte src/net puts on a descriptor goes through SendSome (send(2)
/// with MSG_NOSIGNAL so a peer hangup is an EPIPE errno, never a
/// process-killing SIGPIPE; falls back to write(2) for non-socket fds)
/// and every byte read comes through ReadSome. Both retry EINTR
/// internally and otherwise behave exactly like the syscall: bytes
/// transferred, 0 on EOF (reads), or -1 with errno set (EAGAIN when a
/// deadline armed by SetIoDeadlines expires, or on a nonblocking fd).
/// @{
ssize_t SendSome(int fd, const void* data, size_t n);
ssize_t ReadSome(int fd, void* data, size_t n);
/// @}

/// Closes a connection fd, first shutting both directions down so a peer
/// blocked in read() wakes immediately. Safe on -1.
void CloseConnection(int fd);

/// Sets or clears O_NONBLOCK on `fd`. The reactor flips every accepted
/// connection (and the listener itself) to nonblocking; the blocking
/// endpoints never call this.
Status SetNonBlocking(int fd, bool nonblocking);

/// EINTR-correct close(2), safe on -1 — the one way every endpoint
/// releases a descriptor it owns. On Linux an EINTR'd close has already
/// freed the fd, so retrying could close a descriptor another thread just
/// received; this helper closes exactly once and swallows EINTR instead.
void CloseFd(int fd);

}  // namespace wmp::net

#endif  // WMP_NET_SOCKET_H_
