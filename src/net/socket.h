#ifndef WMP_NET_SOCKET_H_
#define WMP_NET_SOCKET_H_

/// \file socket.h
/// Address parsing and blocking-socket setup shared by net::WireServer and
/// net::WireClient.
///
/// Addresses come in two spellings:
///
///   "unix:/path/to.sock"   a Unix-domain stream socket (the deployment
///                          default for a predictor co-located with its
///                          DBMS — no TCP stack on the hot path)
///   "host:port"            IPv4 TCP; "127.0.0.1:0" binds an ephemeral
///                          port, reported back by Listener::port()
///
/// Everything here is thin POSIX: the wire protocol's concurrency model is
/// blocking I/O per connection (see wire_server.h), so no nonblocking or
/// event-loop machinery is needed.

#include <string>

#include "util/status.h"

namespace wmp::net {

/// A bound, listening server socket plus the bookkeeping to tear it down.
class Listener {
 public:
  Listener() = default;
  ~Listener() { Close(); }
  Listener(Listener&& other) noexcept { *this = std::move(other); }
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on `address` ("unix:PATH" or "host:port"). A Unix
  /// path is unlinked first (a crashed predecessor's stale socket must not
  /// block a restart) and unlinked again on Close.
  Status Listen(const std::string& address, int backlog = 16);

  /// Blocks until a client connects; returns the connection fd. Fails with
  /// FailedPrecondition once Close() has been called (the accept loop's
  /// shutdown signal).
  Result<int> Accept();

  /// Closes the listening socket (wakes a blocked Accept) and removes the
  /// Unix socket file. Idempotent.
  void Close();

  bool listening() const { return fd_ >= 0; }
  /// Resolved TCP port (meaningful after Listen on "host:0"); 0 for Unix.
  int port() const { return port_; }
  /// The address clients should connect to (ephemeral port resolved).
  const std::string& address() const { return address_; }

 private:
  int fd_ = -1;
  int port_ = 0;
  std::string address_;
  std::string unix_path_;  // empty for TCP
};

/// Connects a blocking stream socket to `address`; returns the fd.
Result<int> ConnectTo(const std::string& address);

/// Closes a connection fd, first shutting both directions down so a peer
/// blocked in read() wakes immediately. Safe on -1.
void CloseConnection(int fd);

}  // namespace wmp::net

#endif  // WMP_NET_SOCKET_H_
