#ifndef WMP_NET_BACKOFF_H_
#define WMP_NET_BACKOFF_H_

/// \file backoff.h
/// Retry pacing shared by net::WireClient and net::FleetRouter: bounded
/// exponential backoff with FULL jitter (delay drawn uniformly from
/// [0, min(cap, base * 2^attempt)]), the policy that empirically
/// de-synchronizes retry storms best — a fleet of clients hammering a
/// recovering node spreads out instead of arriving in lockstep waves.
///
/// Deterministic on purpose: callers own the RNG state (splitmix64), so a
/// seeded test replays the exact same delay sequence every run, same as
/// net/fault_inject.h's chaos plans.

#include <cstdint>

namespace wmp::net {

/// splitmix64 — the repo's standard cheap deterministic generator.
inline uint64_t BackoffNextRand(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Delay before retry number `attempt` (0-based: the wait after the first
/// failure is attempt 0). base_ms == 0 disables backoff entirely.
inline uint32_t BackoffDelayMs(uint64_t* state, int attempt,
                               uint32_t base_ms, uint32_t cap_ms) {
  if (base_ms == 0) return 0;
  uint64_t ceiling = base_ms;
  for (int i = 0; i < attempt && ceiling < cap_ms; ++i) ceiling <<= 1;
  if (ceiling > cap_ms) ceiling = cap_ms;
  return static_cast<uint32_t>(BackoffNextRand(state) % (ceiling + 1));
}

}  // namespace wmp::net

#endif  // WMP_NET_BACKOFF_H_
