#ifndef WMP_NET_PROTOCOL_H_
#define WMP_NET_PROTOCOL_H_

/// \file protocol.h
/// Payload encodings of the wire protocol, one struct + Encode/Decode pair
/// per frame type (see net/frame.h for the framing).
///
/// All payloads are built from util/io's little-endian length-prefixed
/// primitives, and every Decode is bounds-checked — a malformed or
/// truncated payload yields a Status, never UB. The encodings are shared
/// verbatim by net::WireServer and net::WireClient (and unit-tested
/// symmetrically), so the two sides cannot drift.
///
/// Request/response summary:
///
///   ScoreRequest    tenant + QueryRecord batch (workloads/wire_format.h)
///                   + per-workload member indices; one frame scores many
///                   workloads — the wire analogue of a BatchScorer call.
///   ScoreResponse   one {ok, prediction | error} per workload, in order.
///   PublishRequest  model name + serialized LearnedWmpModel artifact;
///                   the server installs it on EVERY shard (PublishAll)
///                   and records it in its ModelRegistry.
///   PublishResponse registry epoch now current + shard count swapped.
///   RollbackRequest model name; server re-publishes the previous epoch.
///   StatsResponse   engine::ServiceStats counters + server totals.
///   ErrorBody       status code + message (frame type kError).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/workload.h"
#include "engine/scoring_service.h"
#include "util/status.h"
#include "workloads/query_record.h"

namespace wmp::net {

/// One ScoreWorkloads call on the wire: every workload's member queries
/// index into the request's own record batch.
struct ScoreRequest {
  std::string tenant;
  std::vector<workloads::QueryRecord> records;
  std::vector<core::WorkloadBatch> batches;  // only query_indices travel
};

/// Per-workload outcome; `predictions[i]` is valid iff `ok[i]`, else
/// `errors[i]` holds the failure text.
struct ScoreResponse {
  std::vector<uint8_t> ok;
  std::vector<double> predictions;
  std::vector<std::string> errors;
  size_t size() const { return ok.size(); }
};

struct PublishRequest {
  std::string model_name;
  std::string model_bytes;  ///< LearnedWmpModel::Serialize stream
  /// ArtifactChecksum(model_bytes). EncodePublishRequest computes it over
  /// the exact bytes it puts on the wire (this field is ignored on
  /// encode); DecodePublishRequest recomputes, fills this in, and rejects
  /// on mismatch — so a truncated or bit-flipped artifact dies at the
  /// protocol boundary, before deserialization, before PublishAll, and
  /// before any ModelRegistry epoch exists for it.
  uint64_t artifact_hash = 0;
};

struct PublishResponse {
  uint64_t registry_epoch = 0;
  uint64_t shards_swapped = 0;
};

struct RollbackRequest {
  std::string model_name;
};

struct RollbackResponse {
  uint64_t registry_epoch = 0;
  uint64_t shards_swapped = 0;
};

/// \name Fleet control plane payloads (see net/frame.h for the verbs).
///
/// A kStageRequest reuses the PublishRequest encoding verbatim (same
/// artifact, same checksum gate) — only the frame type changes the verb
/// from "install now" to "validate and park". A kCommitResponse reuses
/// the PublishResponse encoding (the commit IS the publish).
/// @{

/// Router liveness/epoch probe. The nonce is echoed back so a probe
/// response can never be confused with a stale one on a reused stream.
struct HealthRequest {
  uint64_t nonce = 0;
};

struct HealthResponse {
  uint64_t nonce = 0;           ///< echo of the request nonce
  uint64_t registry_epoch = 0;  ///< node's current epoch (0 = no model)
  uint64_t staged_ticket = 0;   ///< nonzero while an artifact is parked
  uint64_t queue_depth = 0;     ///< scoring backlog snapshot
};

/// Answer to a kStageRequest: the ticket a commit/abort must name, plus
/// the artifact hash the node verified (the router cross-checks it).
struct StageResponse {
  uint64_t ticket = 0;
  uint64_t artifact_hash = 0;
};

/// kCommitRequest / kAbortRequest body. An abort with ticket 0 discards
/// whatever is staged (the compensation path doesn't always know the
/// ticket — its stage call may have died before the response arrived).
struct TicketRequest {
  uint64_t ticket = 0;
};

struct AbortResponse {
  uint8_t had_staged = 0;  ///< 1 if an artifact was actually discarded
};

std::string EncodeHealthRequest(const HealthRequest& request);
Result<HealthRequest> DecodeHealthRequest(const std::string& payload);

std::string EncodeHealthResponse(const HealthResponse& response);
Result<HealthResponse> DecodeHealthResponse(const std::string& payload);

std::string EncodeStageResponse(const StageResponse& response);
Result<StageResponse> DecodeStageResponse(const std::string& payload);

std::string EncodeTicketRequest(const TicketRequest& request);
Result<TicketRequest> DecodeTicketRequest(const std::string& payload);

std::string EncodeAbortResponse(const AbortResponse& response);
Result<AbortResponse> DecodeAbortResponse(const std::string& payload);

/// @}

/// Server-side counters riding on a StatsResponse frame, alongside the
/// scoring service's own ServiceStats.
struct WireServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t frames_served = 0;
  /// Malformed/undecodable frames and rejected requests — peer
  /// misbehavior, distinct from local resource blips below.
  uint64_t protocol_errors = 0;
  /// Transient accept() failures (EMFILE under a connection burst,
  /// ECONNABORTED); the server backs off and keeps accepting.
  uint64_t accept_failures = 0;
};

struct StatsResponse {
  engine::ServiceStats service;
  WireServerCounters server;
};

struct ErrorBody {
  uint8_t code = 0;  ///< StatusCode of the failure
  std::string message;
};

/// Encodes from borrowed parts (QueryRecord is move-only, so callers —
/// the client above all — never hold an assembled ScoreRequest).
std::string EncodeScoreRequest(
    std::string_view tenant,
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<core::WorkloadBatch>& batches);
Result<ScoreRequest> DecodeScoreRequest(const std::string& payload);

std::string EncodeScoreResponse(const ScoreResponse& response);
Result<ScoreResponse> DecodeScoreResponse(const std::string& payload);

std::string EncodePublishRequest(const PublishRequest& request);
Result<PublishRequest> DecodePublishRequest(const std::string& payload);

std::string EncodePublishResponse(const PublishResponse& response);
Result<PublishResponse> DecodePublishResponse(const std::string& payload);

std::string EncodeRollbackRequest(const RollbackRequest& request);
Result<RollbackRequest> DecodeRollbackRequest(const std::string& payload);

std::string EncodeRollbackResponse(const RollbackResponse& response);
Result<RollbackResponse> DecodeRollbackResponse(const std::string& payload);

std::string EncodeStatsResponse(const StatsResponse& response);
Result<StatsResponse> DecodeStatsResponse(const std::string& payload);

std::string EncodeErrorBody(const ErrorBody& error);
/// Decoding an error body never fails: a garbled error payload degrades to
/// an Internal "unparseable error frame" description.
ErrorBody DecodeErrorBody(const std::string& payload);

/// Convenience: the Status a client should surface for a kError frame.
Status StatusFromError(const ErrorBody& error);

/// Integrity checksum of a serialized model artifact as it travels on a
/// publish frame (util::HashBytes under a fixed seed). Non-cryptographic:
/// the threat model is truncation and bit rot between trainer and fleet,
/// not an adversary forging artifacts. Both sides hash the same
/// little-endian byte stream, so the check is platform-stable wherever the
/// artifacts themselves are.
uint64_t ArtifactChecksum(std::string_view model_bytes);

/// \name Pipelined-frame payload framing.
///
/// A kScoreRequestPipelined / kScoreResponsePipelined / kErrorPipelined
/// payload is a u32 correlation id followed by the corresponding plain
/// payload encoding — compose these with the Encode/Decode pairs above.
/// @{
std::string EncodePipelinedPayload(uint32_t correlation_id,
                                   std::string_view body);
/// Splits off the correlation id; `*body` receives the inner payload.
Result<uint32_t> DecodePipelinedPayload(const std::string& payload,
                                        std::string* body);
/// @}

}  // namespace wmp::net

#endif  // WMP_NET_PROTOCOL_H_
