#include "net/dispatch.h"

#include <utility>

#include "util/io.h"
#include "util/strings.h"

namespace wmp::net {

Frame ErrorFrame(const Status& status) {
  ErrorBody error;
  error.code = static_cast<uint8_t>(status.code());
  error.message = status.message();
  return Frame{FrameType::kError, EncodeErrorBody(error)};
}

std::vector<std::future<Result<double>>> RequestDispatcher::SubmitScore(
    const ScoreRequest& request) const {
  // Submit every workload before anyone collects a future: the service
  // micro-batches the whole request into as few flushes as possible, which
  // is the entire point of batched score frames.
  std::vector<std::future<Result<double>>> futures;
  futures.reserve(request.batches.size());
  for (const core::WorkloadBatch& b : request.batches) {
    futures.push_back(
        service_->Submit(request.tenant, request.records, b.query_indices));
  }
  return futures;
}

Frame RequestDispatcher::BuildScoreResponse(
    std::vector<Result<double>> outcomes) {
  ScoreResponse response;
  response.ok.resize(outcomes.size());
  response.predictions.assign(outcomes.size(), 0.0);
  response.errors.resize(outcomes.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].ok()) {
      response.ok[i] = 1;
      response.predictions[i] = *outcomes[i];
    } else {
      response.ok[i] = 0;
      response.errors[i] = outcomes[i].status().ToString();
    }
  }
  return Frame{FrameType::kScoreResponse, EncodeScoreResponse(response)};
}

Frame RequestDispatcher::HandlePublish(const Frame& request) const {
  auto decoded = DecodePublishRequest(request.payload);
  if (!decoded.ok()) return ErrorFrame(decoded.status());
  BinaryReader reader(std::move(decoded->model_bytes));
  auto model = core::LearnedWmpModel::Deserialize(&reader);
  if (!model.ok()) {
    return ErrorFrame(Status(model.status().code(),
                             "artifact rejected: " + model.status().message()));
  }
  auto fresh =
      std::make_shared<const core::LearnedWmpModel>(std::move(*model));
  const std::string name = decoded->model_name.empty()
                               ? default_model_name_
                               : decoded->model_name;
  auto epoch = service_->PublishAll(std::move(fresh), registry_, name);
  if (!epoch.ok()) return ErrorFrame(epoch.status());
  PublishResponse response;
  response.registry_epoch = *epoch;
  response.shards_swapped = service_->num_shards();
  return Frame{FrameType::kPublishResponse, EncodePublishResponse(response)};
}

Frame RequestDispatcher::HandleRollback(const Frame& request) const {
  auto decoded = DecodeRollbackRequest(request.payload);
  if (!decoded.ok()) return ErrorFrame(decoded.status());
  if (registry_ == nullptr) {
    return ErrorFrame(
        Status::FailedPrecondition("server has no model registry"));
  }
  // Registry pop + shard swap are one atomic rollout inside the service
  // (same mutex as PublishAll), so a racing publish frame can't leave the
  // shards serving a different model than the registry's current epoch.
  auto epoch = service_->RollbackAll(registry_, decoded->model_name);
  if (!epoch.ok()) return ErrorFrame(epoch.status());
  RollbackResponse response;
  response.registry_epoch = *epoch;
  response.shards_swapped = service_->num_shards();
  return Frame{FrameType::kRollbackResponse,
               EncodeRollbackResponse(response)};
}

Frame RequestDispatcher::HandleStats(const WireServerCounters& server) const {
  StatsResponse response;
  response.service = service_->stats();
  response.server = server;
  return Frame{FrameType::kStatsResponse, EncodeStatsResponse(response)};
}

Frame RequestDispatcher::UnexpectedFrame(FrameType type) {
  return ErrorFrame(Status::InvalidArgument(
      StrFormat("unexpected frame type %u (%s)", static_cast<unsigned>(type),
                FrameTypeName(type))));
}

}  // namespace wmp::net
