#include "net/dispatch.h"

#include <utility>

#include "util/io.h"
#include "util/strings.h"

namespace wmp::net {

Frame ErrorFrame(const Status& status) {
  ErrorBody error;
  error.code = static_cast<uint8_t>(status.code());
  error.message = status.message();
  return Frame{FrameType::kError, EncodeErrorBody(error)};
}

std::vector<std::future<Result<double>>> RequestDispatcher::SubmitScore(
    const ScoreRequest& request) const {
  // Submit every workload before anyone collects a future: the service
  // micro-batches the whole request into as few flushes as possible, which
  // is the entire point of batched score frames.
  std::vector<std::future<Result<double>>> futures;
  futures.reserve(request.batches.size());
  for (const core::WorkloadBatch& b : request.batches) {
    futures.push_back(
        service_->Submit(request.tenant, request.records, b.query_indices));
  }
  return futures;
}

Frame RequestDispatcher::BuildScoreResponse(
    std::vector<Result<double>> outcomes) {
  ScoreResponse response;
  response.ok.resize(outcomes.size());
  response.predictions.assign(outcomes.size(), 0.0);
  response.errors.resize(outcomes.size());
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].ok()) {
      response.ok[i] = 1;
      response.predictions[i] = *outcomes[i];
    } else {
      response.ok[i] = 0;
      response.errors[i] = outcomes[i].status().ToString();
    }
  }
  return Frame{FrameType::kScoreResponse, EncodeScoreResponse(response)};
}

Frame RequestDispatcher::HandlePublish(const Frame& request) const {
  auto decoded = DecodePublishRequest(request.payload);
  if (!decoded.ok()) return ErrorFrame(decoded.status());
  BinaryReader reader(std::move(decoded->model_bytes));
  auto model = core::LearnedWmpModel::Deserialize(&reader);
  if (!model.ok()) {
    return ErrorFrame(Status(model.status().code(),
                             "artifact rejected: " + model.status().message()));
  }
  auto fresh =
      std::make_shared<const core::LearnedWmpModel>(std::move(*model));
  const std::string name = decoded->model_name.empty()
                               ? default_model_name_
                               : decoded->model_name;
  auto epoch = service_->PublishAll(std::move(fresh), registry_, name);
  if (!epoch.ok()) return ErrorFrame(epoch.status());
  PublishResponse response;
  response.registry_epoch = *epoch;
  response.shards_swapped = service_->num_shards();
  return Frame{FrameType::kPublishResponse, EncodePublishResponse(response)};
}

Frame RequestDispatcher::HandleRollback(const Frame& request) const {
  auto decoded = DecodeRollbackRequest(request.payload);
  if (!decoded.ok()) return ErrorFrame(decoded.status());
  if (registry_ == nullptr) {
    return ErrorFrame(
        Status::FailedPrecondition("server has no model registry"));
  }
  // Registry pop + shard swap are one atomic rollout inside the service
  // (same mutex as PublishAll), so a racing publish frame can't leave the
  // shards serving a different model than the registry's current epoch.
  auto epoch = service_->RollbackAll(registry_, decoded->model_name);
  if (!epoch.ok()) return ErrorFrame(epoch.status());
  RollbackResponse response;
  response.registry_epoch = *epoch;
  response.shards_swapped = service_->num_shards();
  return Frame{FrameType::kRollbackResponse,
               EncodeRollbackResponse(response)};
}

Frame RequestDispatcher::HandleHealth(const Frame& request) const {
  auto decoded = DecodeHealthRequest(request.payload);
  if (!decoded.ok()) return ErrorFrame(decoded.status());
  HealthResponse response;
  response.nonce = decoded->nonce;
  if (registry_ != nullptr) {
    auto current = registry_->Current(default_model_name_);
    if (current.ok()) response.registry_epoch = current->epoch;
  }
  {
    std::lock_guard<std::mutex> lock(stage_mutex_);
    if (staged_.has_value()) response.staged_ticket = staged_->ticket;
  }
  response.queue_depth = service_->stats().queue_depth;
  return Frame{FrameType::kHealthResponse, EncodeHealthResponse(response)};
}

Frame RequestDispatcher::HandleStage(const Frame& request) {
  // Same decode as a direct publish — the checksum gate runs here, so a
  // corrupted artifact is refused at stage time, while the fleet can
  // still abort cheaply, not at commit time when peers already committed.
  auto decoded = DecodePublishRequest(request.payload);
  if (!decoded.ok()) return ErrorFrame(decoded.status());
  const uint64_t artifact_hash = decoded->artifact_hash;
  BinaryReader reader(std::move(decoded->model_bytes));
  auto model = core::LearnedWmpModel::Deserialize(&reader);
  if (!model.ok()) {
    return ErrorFrame(
        Status(model.status().code(),
               "staged artifact rejected: " + model.status().message()));
  }
  StagedArtifact staged;
  staged.artifact_hash = artifact_hash;
  staged.model_name = decoded->model_name.empty() ? default_model_name_
                                                  : decoded->model_name;
  staged.model =
      std::make_shared<const core::LearnedWmpModel>(std::move(*model));
  StageResponse response;
  {
    std::lock_guard<std::mutex> lock(stage_mutex_);
    staged.ticket = next_ticket_++;
    response.ticket = staged.ticket;
    response.artifact_hash = staged.artifact_hash;
    staged_ = std::move(staged);
  }
  return Frame{FrameType::kStageResponse, EncodeStageResponse(response)};
}

Frame RequestDispatcher::HandleCommit(const Frame& request) {
  auto decoded = DecodeTicketRequest(request.payload);
  if (!decoded.ok()) return ErrorFrame(decoded.status());
  StagedArtifact staged;
  {
    std::lock_guard<std::mutex> lock(stage_mutex_);
    if (!staged_.has_value()) {
      return ErrorFrame(Status::FailedPrecondition(
          "commit without a staged artifact (stage phase never reached "
          "this node, or an abort already discarded it)"));
    }
    if (staged_->ticket != decoded->ticket) {
      // Leave the mismatched artifact parked: the rollout that staged it
      // may still commit or abort it by its own ticket.
      return ErrorFrame(Status::FailedPrecondition(
          StrFormat("commit ticket %llu does not match staged ticket %llu",
                    static_cast<unsigned long long>(decoded->ticket),
                    static_cast<unsigned long long>(staged_->ticket))));
    }
    staged = std::move(*staged_);
    staged_.reset();
  }
  auto epoch =
      service_->PublishAll(std::move(staged.model), registry_,
                           staged.model_name);
  if (!epoch.ok()) return ErrorFrame(epoch.status());
  PublishResponse response;
  response.registry_epoch = *epoch;
  response.shards_swapped = service_->num_shards();
  return Frame{FrameType::kCommitResponse, EncodePublishResponse(response)};
}

Frame RequestDispatcher::HandleAbort(const Frame& request) {
  auto decoded = DecodeTicketRequest(request.payload);
  if (!decoded.ok()) return ErrorFrame(decoded.status());
  AbortResponse response;
  {
    std::lock_guard<std::mutex> lock(stage_mutex_);
    if (staged_.has_value() &&
        (decoded->ticket == 0 || staged_->ticket == decoded->ticket)) {
      staged_.reset();
      response.had_staged = 1;
    }
  }
  return Frame{FrameType::kAbortResponse, EncodeAbortResponse(response)};
}

Frame RequestDispatcher::HandleStats(const WireServerCounters& server) const {
  StatsResponse response;
  response.service = service_->stats();
  response.server = server;
  return Frame{FrameType::kStatsResponse, EncodeStatsResponse(response)};
}

Frame RequestDispatcher::UnexpectedFrame(FrameType type) {
  return ErrorFrame(Status::InvalidArgument(
      StrFormat("unexpected frame type %u (%s)", static_cast<unsigned>(type),
                FrameTypeName(type))));
}

}  // namespace wmp::net
