#ifndef WMP_NET_WIRE_SERVER_H_
#define WMP_NET_WIRE_SERVER_H_

/// \file wire_server.h
/// Out-of-process front end for engine::ScoringService — the socket server
/// a DBMS admission controller (or `wmpctl score --connect`) talks to.
///
/// Architecture
///
///     clients ──frames──▶ accept loop ──▶ per-connection handler threads
///                                               │ decode + validate
///                                               ▼
///                                 engine::ScoringService  (async shards,
///                                  micro-batching, caches, hot-swap)
///                                               │
///                          engine::ModelRegistry (publish/rollback epochs)
///
///  * **Blocking I/O, single accept loop.** `Serve` accepts on the calling
///    thread and hands each connection to a lightweight handler thread
///    that does nothing but frame decode/encode — all scoring runs on the
///    service's dispatcher shards, so on the single-core deployment the
///    handlers add no compute of their own. Handler threads are reaped as
///    connections close and joined on Shutdown.
///  * **Requests.** ScoreRequest frames submit every workload of the
///    request to the service and answer with per-workload outcomes (one
///    client error cannot fail its neighbors); Publish frames deserialize
///    the carried artifact and roll it out across ALL shards
///    (ScoringService::PublishAll) with registry recording; Rollback
///    frames re-publish the previous registry epoch; Stats and Ping serve
///    monitoring.
///  * **Hostile input.** Frames are size-capped before payload allocation,
///    payload decoding is fully bounds-checked, and workload indices are
///    validated against the request's own record batch. A malformed frame
///    gets a kError response (when the stream is still framed) or drops
///    the connection; either way the server keeps serving everyone else.
///
/// Thread-safety: Start/Serve once; Shutdown/stats from any thread.
///
/// This is the REFERENCE server: simple, blocking, one thread per socket.
/// The production front end for many concurrent controllers is the
/// event-loop net::ReactorServer (reactor_server.h); both execute requests
/// through the same net::RequestDispatcher, so their responses are bitwise
/// identical and this server doubles as the equivalence oracle in tests
/// and benches.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/model_registry.h"
#include "engine/scoring_service.h"
#include "net/dispatch.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace wmp::net {

struct WireServerOptions {
  /// Receiver-side frame bound (see FrameLimits).
  size_t max_payload_bytes = 64ull << 20;
  /// Listen backlog.
  int backlog = 16;
};

/// \brief Socket server exposing a ScoringService + ModelRegistry.
class WireServer {
 public:
  /// Borrows `service` and `registry`; both must outlive the server.
  /// `model_name` is the registry name PublishRequest frames default to
  /// recording under when they carry an empty name.
  WireServer(engine::ScoringService* service, engine::ModelRegistry* registry,
             std::string model_name, WireServerOptions options = {});
  ~WireServer();
  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  /// Binds and listens on `address` ("unix:PATH" or "host:port";
  /// "127.0.0.1:0" picks an ephemeral port — see address()).
  Status Listen(const std::string& address);

  /// Runs the accept loop on the calling thread until Shutdown().
  /// Returns OK on a clean shutdown.
  Status Serve();

  /// Runs the accept loop on an internal thread (benches, tests, the
  /// in-process half of examples). Pair with Shutdown().
  Status Start();

  /// Stops accepting, wakes every connection, joins all handler threads
  /// (and the Start thread). Idempotent; also run by the destructor.
  void Shutdown();

  /// Connectable address (ephemeral TCP port resolved); valid after
  /// Listen succeeds.
  const std::string& address() const { return listener_.address(); }
  int port() const { return listener_.port(); }

  WireServerCounters stats() const;

 private:
  struct Connection {
    /// Owned fd; whoever exchange()s the live value to -1 closes it, so a
    /// handler finishing and Shutdown racing can never double-close.
    std::atomic<int> fd{-1};
    std::thread handler;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void HandleConnection(Connection* conn);
  /// Decodes and executes one request frame; returns the response frame.
  /// Never throws; failures become kError frames. The heavy lifting lives
  /// in the shared net::RequestDispatcher (also used by ReactorServer);
  /// this just routes on frame type and blocks on score futures.
  Frame HandleFrame(const Frame& request);
  Frame HandleScore(const Frame& request);
  void ReapFinishedConnections();

  RequestDispatcher dispatcher_;
  WireServerOptions options_;
  Listener listener_;
  std::thread serve_thread_;  // Start() only
  std::atomic<bool> shutting_down_{false};
  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::mutex shutdown_mutex_;  // serializes Shutdown vs destructor

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> frames_served_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> accept_failures_{0};
};

}  // namespace wmp::net

#endif  // WMP_NET_WIRE_SERVER_H_
