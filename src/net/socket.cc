#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>

#include "util/strings.h"

namespace wmp::net {

namespace {

constexpr char kUnixPrefix[] = "unix:";

struct ParsedAddress {
  bool is_unix = false;
  std::string unix_path;
  std::string host;
  int port = 0;
};

Result<ParsedAddress> ParseAddress(const std::string& address) {
  ParsedAddress parsed;
  if (StartsWith(address, kUnixPrefix)) {
    parsed.is_unix = true;
    parsed.unix_path = address.substr(sizeof(kUnixPrefix) - 1);
    if (parsed.unix_path.empty()) {
      return Status::InvalidArgument("empty unix socket path");
    }
    sockaddr_un sun{};
    if (parsed.unix_path.size() >= sizeof(sun.sun_path)) {
      return Status::InvalidArgument(
          StrFormat("unix socket path longer than %zu bytes: %s",
                    sizeof(sun.sun_path) - 1, parsed.unix_path.c_str()));
    }
    return parsed;
  }
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return Status::InvalidArgument(
        "address must be unix:PATH or host:port: " + address);
  }
  parsed.host = address.substr(0, colon);
  char* end = nullptr;
  const long port = std::strtol(address.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
    return Status::InvalidArgument("bad port in address: " + address);
  }
  parsed.port = static_cast<int>(port);
  return parsed;
}

Result<sockaddr_in> ToSockaddrIn(const ParsedAddress& parsed) {
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_port = htons(static_cast<uint16_t>(parsed.port));
  if (::inet_pton(AF_INET, parsed.host.c_str(), &sin.sin_addr) != 1) {
    return Status::InvalidArgument(
        "host must be an IPv4 literal (e.g. 127.0.0.1): " + parsed.host);
  }
  return sin;
}

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

}  // namespace

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
    address_ = std::move(other.address_);
    unix_path_ = std::move(other.unix_path_);
  }
  return *this;
}

Status Listener::Listen(const std::string& address, int backlog) {
  if (fd_ >= 0) return Status::FailedPrecondition("listener already bound");
  WMP_ASSIGN_OR_RETURN(ParsedAddress parsed, ParseAddress(address));
  if (parsed.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket(AF_UNIX)");
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    std::strncpy(sun.sun_path, parsed.unix_path.c_str(),
                 sizeof(sun.sun_path) - 1);
    ::unlink(parsed.unix_path.c_str());  // stale socket from a dead server
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sun), sizeof(sun)) < 0) {
      ::close(fd);
      return Errno("bind(unix)");
    }
    if (::listen(fd, backlog) < 0) {
      ::close(fd);
      ::unlink(parsed.unix_path.c_str());
      return Errno("listen(unix)");
    }
    fd_ = fd;
    unix_path_ = parsed.unix_path;
    address_ = address;
    return Status::OK();
  }
  WMP_ASSIGN_OR_RETURN(sockaddr_in sin, ToSockaddrIn(parsed));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) < 0) {
    ::close(fd);
    return Errno("bind(tcp)");
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    return Errno("listen(tcp)");
  }
  // Resolve the ephemeral port so callers can hand out a connectable
  // address after binding host:0.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    ::close(fd);
    return Errno("getsockname");
  }
  fd_ = fd;
  port_ = ntohs(bound.sin_port);
  address_ = StrFormat("%s:%d", parsed.host.c_str(), port_);
  return Status::OK();
}

Result<int> Listener::Accept() {
  if (fd_ < 0) return Status::FailedPrecondition("listener closed");
  for (;;) {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn >= 0) {
      // Score requests are one large frame each way; Nagle only adds
      // latency to the response tail. Harmless ENOTSUP on Unix sockets.
      const int one = 1;
      ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return conn;
    }
    if (errno == EINTR) continue;
    if (fd_ < 0 || errno == EBADF || errno == EINVAL) {
      return Status::FailedPrecondition("listener closed");
    }
    return Errno("accept");
  }
}

void Listener::Close() {
  if (fd_ >= 0) {
    // shutdown() wakes a thread blocked in accept() on some platforms;
    // close() finishes the job on Linux.
    ::shutdown(fd_, SHUT_RDWR);
    CloseFd(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

namespace {

// connect(2) with an optional deadline. With a timeout the socket goes
// nonblocking for the duration: EINPROGRESS + poll(POLLOUT) + SO_ERROR is
// the portable bounded-connect idiom; the fd is flipped back to blocking
// before it is returned either way.
Status ConnectWithDeadline(int fd, const sockaddr* addr, socklen_t len,
                           const std::string& address, int timeout_ms) {
  const auto connect_error = [&address](const char* what) {
    return Status::IOError(
        StrFormat("%s(%s): %s", what, address.c_str(), std::strerror(errno)));
  };
  if (timeout_ms <= 0) {
    int rc;
    do {
      rc = ::connect(fd, addr, len);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return connect_error("connect");
    return Status::OK();
  }
  WMP_RETURN_IF_ERROR(SetNonBlocking(fd, true));
  int rc;
  do {
    rc = ::connect(fd, addr, len);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0 && errno != EINPROGRESS) return connect_error("connect");
  if (rc < 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return connect_error("poll(connect)");
    if (rc == 0) {
      return Status::DeadlineExceeded(
          StrFormat("connect(%s) timed out after %d ms", address.c_str(),
                    timeout_ms));
    }
    int so_error = 0;
    socklen_t so_len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len) < 0) {
      return connect_error("getsockopt(SO_ERROR)");
    }
    if (so_error != 0) {
      errno = so_error;
      return connect_error("connect");
    }
  }
  return SetNonBlocking(fd, false);
}

}  // namespace

Result<int> ConnectTo(const std::string& address, int timeout_ms) {
  WMP_ASSIGN_OR_RETURN(ParsedAddress parsed, ParseAddress(address));
  if (parsed.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket(AF_UNIX)");
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    std::strncpy(sun.sun_path, parsed.unix_path.c_str(),
                 sizeof(sun.sun_path) - 1);
    if (Status st = ConnectWithDeadline(fd, reinterpret_cast<sockaddr*>(&sun),
                                        sizeof(sun), address, timeout_ms);
        !st.ok()) {
      ::close(fd);
      return st;
    }
    return fd;
  }
  WMP_ASSIGN_OR_RETURN(sockaddr_in sin, ToSockaddrIn(parsed));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  if (Status st = ConnectWithDeadline(fd, reinterpret_cast<sockaddr*>(&sin),
                                      sizeof(sin), address, timeout_ms);
      !st.ok()) {
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SetIoDeadlines(int fd, int recv_timeout_ms, int send_timeout_ms) {
  const auto set = [fd](int opt, int ms, const char* what) -> Status {
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    if (::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv)) < 0) {
      if (errno == ENOTSOCK) return Status::OK();  // pipes in tests
      return Errno(what);
    }
    return Status::OK();
  };
  if (recv_timeout_ms >= 0) {
    WMP_RETURN_IF_ERROR(set(SO_RCVTIMEO, recv_timeout_ms,
                            "setsockopt(SO_RCVTIMEO)"));
  }
  if (send_timeout_ms >= 0) {
    WMP_RETURN_IF_ERROR(set(SO_SNDTIMEO, send_timeout_ms,
                            "setsockopt(SO_SNDTIMEO)"));
  }
  return Status::OK();
}

ssize_t SendSome(int fd, const void* data, size_t n) {
  for (;;) {
#ifdef MSG_NOSIGNAL
    ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = ::write(fd, data, n);
#else
    ssize_t w = ::write(fd, data, n);
#endif
    if (w < 0 && errno == EINTR) continue;
    return w;
  }
}

ssize_t ReadSome(int fd, void* data, size_t n) {
  for (;;) {
    const ssize_t r = ::read(fd, data, n);
    if (r < 0 && errno == EINTR) continue;
    return r;
  }
}

void CloseConnection(int fd) {
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);
  CloseFd(fd);
}

Status SetNonBlocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int want = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

void CloseFd(int fd) {
  if (fd < 0) return;
  // Exactly one close: on Linux EINTR means the fd is already released, and
  // a retry would race a concurrent accept()/socket() reusing the number.
  ::close(fd);
}

}  // namespace wmp::net
