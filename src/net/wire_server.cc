#include "net/wire_server.h"

#include <chrono>
#include <future>
#include <thread>
#include <utility>

namespace wmp::net {

WireServer::WireServer(engine::ScoringService* service,
                       engine::ModelRegistry* registry,
                       std::string model_name, WireServerOptions options)
    : dispatcher_(service, registry, std::move(model_name)),
      options_(options) {}

WireServer::~WireServer() { Shutdown(); }

Status WireServer::Listen(const std::string& address) {
  return listener_.Listen(address, options_.backlog);
}

Status WireServer::Serve() {
  if (!listener_.listening()) {
    return Status::FailedPrecondition("Serve before Listen");
  }
  AcceptLoop();
  return Status::OK();
}

Status WireServer::Start() {
  if (!listener_.listening()) {
    return Status::FailedPrecondition("Start before Listen");
  }
  if (serve_thread_.joinable()) {
    return Status::FailedPrecondition("server already started");
  }
  serve_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void WireServer::AcceptLoop() {
  while (!shutting_down_.load(std::memory_order_acquire)) {
    auto conn_fd = listener_.Accept();
    if (!conn_fd.ok()) {
      // FailedPrecondition = the listener was closed (Shutdown). Anything
      // else is a transient resource failure (EMFILE under a connection
      // burst, ECONNABORTED): reap finished handlers to free descriptors,
      // back off briefly, and keep accepting — a still-running server
      // must not silently go deaf.
      if (shutting_down_.load(std::memory_order_acquire) ||
          conn_fd.status().IsFailedPrecondition()) {
        break;
      }
      accept_failures_.fetch_add(1, std::memory_order_relaxed);
      ReapFinishedConnections();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    ReapFinishedConnections();
    auto conn = std::make_unique<Connection>();
    conn->fd = *conn_fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(conn));
    }
    // The handler thread is started AFTER the connection is registered so
    // Shutdown can always see (and join) it.
    raw->handler = std::thread([this, raw] { HandleConnection(raw); });
  }
}

void WireServer::ReapFinishedConnections() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->handler.joinable()) (*it)->handler.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void WireServer::HandleConnection(Connection* conn) {
  FrameLimits limits;
  limits.max_payload_bytes = options_.max_payload_bytes;
  const int fd = conn->fd.load(std::memory_order_acquire);
  for (;;) {
    auto frame = ReadFrame(fd, limits);
    if (!frame.ok()) {
      // NotFound = clean hangup. A malformed header (bad magic, oversize
      // length) means the stream is desynchronized: answer with one error
      // frame on a best-effort basis, then drop the connection — there is
      // no way to find the next frame boundary.
      if (!frame.status().IsNotFound()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        const Frame err = ErrorFrame(frame.status());
        (void)WriteFrame(fd, err.type, err.payload);
      }
      break;
    }
    const Frame response = HandleFrame(*frame);
    frames_served_.fetch_add(1, std::memory_order_relaxed);
    if (response.type == FrameType::kError) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    if (Status st = WriteFrame(fd, response.type, response.payload);
        !st.ok()) {
      break;  // peer went away mid-response
    }
  }
  CloseConnection(conn->fd.exchange(-1));
  conn->done.store(true, std::memory_order_release);
}

Frame WireServer::HandleFrame(const Frame& request) {
  switch (request.type) {
    case FrameType::kPing:
      return Frame{FrameType::kPong, request.payload};
    case FrameType::kScoreRequest:
      return HandleScore(request);
    case FrameType::kPublishRequest:
      return dispatcher_.HandlePublish(request);
    case FrameType::kRollbackRequest:
      return dispatcher_.HandleRollback(request);
    case FrameType::kStatsRequest:
      return dispatcher_.HandleStats(stats());
    case FrameType::kHealthRequest:
      return dispatcher_.HandleHealth(request);
    case FrameType::kStageRequest:
      return dispatcher_.HandleStage(request);
    case FrameType::kCommitRequest:
      return dispatcher_.HandleCommit(request);
    case FrameType::kAbortRequest:
      return dispatcher_.HandleAbort(request);
    default:
      return RequestDispatcher::UnexpectedFrame(request.type);
  }
}

Frame WireServer::HandleScore(const Frame& request) {
  auto decoded = DecodeScoreRequest(request.payload);
  if (!decoded.ok()) return ErrorFrame(decoded.status());
  // The request's records outlive the futures (collected right below),
  // satisfying Submit's borrow; blocking this handler thread on get() is
  // exactly the concurrency model of this server.
  std::vector<std::future<Result<double>>> futures =
      dispatcher_.SubmitScore(*decoded);
  std::vector<Result<double>> outcomes;
  outcomes.reserve(futures.size());
  for (auto& future : futures) outcomes.push_back(future.get());
  return RequestDispatcher::BuildScoreResponse(std::move(outcomes));
}

WireServerCounters WireServer::stats() const {
  WireServerCounters counters;
  counters.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  counters.frames_served = frames_served_.load(std::memory_order_relaxed);
  counters.protocol_errors =
      protocol_errors_.load(std::memory_order_relaxed);
  counters.accept_failures =
      accept_failures_.load(std::memory_order_relaxed);
  return counters;
}

void WireServer::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  shutting_down_.store(true, std::memory_order_release);
  listener_.Close();  // wakes the accept loop
  if (serve_thread_.joinable()) serve_thread_.join();
  // Wake handlers blocked in ReadFrame, then join them all.
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> conn_lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    CloseConnection(conn->fd.exchange(-1));
  }
  for (auto& conn : connections) {
    if (conn->handler.joinable()) conn->handler.join();
  }
}

}  // namespace wmp::net
