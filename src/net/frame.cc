#include "net/frame.h"

#include <cerrno>
#include <cstring>
#include <sys/types.h>
#include <unistd.h>

#include "net/fault_inject.h"
#include "net/socket.h"
#include "util/strings.h"

namespace wmp::net {

namespace {

constexpr uint32_t kFrameMagic = 0x31464D57;  // "WMF1" little-endian
constexpr size_t kHeaderBytes = kFrameHeaderBytes;

// Blocking write of exactly n bytes. SendSome (net/socket.h) is the shared
// EINTR/SIGPIPE-correct primitive; an armed FaultInjector takes over the
// whole operation instead (chaos tests). With SO_SNDTIMEO armed on the fd
// a stalled peer surfaces as kDeadlineExceeded, not an indefinite block.
Status WriteAll(int fd, const char* data, size_t n) {
  if (FaultInjector* chaos = ActiveFaultInjector()) {
    return chaos->InjectedWrite(fd, data, n);
  }
  size_t off = 0;
  while (off < n) {
    const ssize_t w = SendSome(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("frame write timed out");
      }
      return Status::IOError(
          StrFormat("frame write failed: %s", std::strerror(errno)));
    }
    if (w == 0) return Status::IOError("frame write made no progress");
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

// Blocking read of exactly n bytes. `*got` reports progress so the caller
// can distinguish clean EOF (0 bytes) from a truncated frame. With
// SO_RCVTIMEO armed, a peer that stalls mid-frame fails the read with
// kDeadlineExceeded instead of parking the thread forever.
Status ReadAll(int fd, char* data, size_t n, size_t* got) {
  *got = 0;
  while (*got < n) {
    const ssize_t r = ReadSome(fd, data + *got, n - *got);
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("frame read timed out");
      }
      return Status::IOError(
          StrFormat("frame read failed: %s", std::strerror(errno)));
    }
    if (r == 0) return Status::OK();  // EOF; caller checks *got
    *got += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status ValidateHeader(const char* header, const FrameLimits& limits,
                      FrameType* type, uint32_t* payload_len) {
  uint32_t magic = 0;
  std::memcpy(&magic, header, sizeof(magic));
  if (magic != kFrameMagic) {
    return Status::InvalidArgument(
        StrFormat("bad frame magic 0x%08x (peer is not speaking the WMF1 "
                  "protocol, or the stream desynchronized)",
                  magic));
  }
  *type = static_cast<FrameType>(static_cast<uint8_t>(header[4]));
  std::memcpy(payload_len, header + 5, sizeof(*payload_len));
  if (static_cast<size_t>(*payload_len) > limits.max_payload_bytes) {
    return Status::InvalidArgument(
        StrFormat("frame payload of %u bytes exceeds the %zu-byte limit",
                  *payload_len, limits.max_payload_bytes));
  }
  return Status::OK();
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kPing: return "ping";
    case FrameType::kPong: return "pong";
    case FrameType::kScoreRequest: return "score-request";
    case FrameType::kScoreResponse: return "score-response";
    case FrameType::kPublishRequest: return "publish-request";
    case FrameType::kPublishResponse: return "publish-response";
    case FrameType::kStatsRequest: return "stats-request";
    case FrameType::kStatsResponse: return "stats-response";
    case FrameType::kRollbackRequest: return "rollback-request";
    case FrameType::kRollbackResponse: return "rollback-response";
    case FrameType::kScoreRequestPipelined: return "score-request-pipelined";
    case FrameType::kScoreResponsePipelined:
      return "score-response-pipelined";
    case FrameType::kHealthRequest: return "health-request";
    case FrameType::kHealthResponse: return "health-response";
    case FrameType::kStageRequest: return "stage-request";
    case FrameType::kStageResponse: return "stage-response";
    case FrameType::kCommitRequest: return "commit-request";
    case FrameType::kCommitResponse: return "commit-response";
    case FrameType::kAbortRequest: return "abort-request";
    case FrameType::kAbortResponse: return "abort-response";
    case FrameType::kErrorPipelined: return "error-pipelined";
    case FrameType::kError: return "error";
  }
  return "unknown";
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  const uint32_t magic = kFrameMagic;
  out.append(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.push_back(static_cast<char>(type));
  const uint32_t len = static_cast<uint32_t>(payload.size());
  out.append(reinterpret_cast<const char*>(&len), sizeof(len));
  out.append(payload.data(), payload.size());
  return out;
}

Result<Frame> DecodeFrame(std::string_view buf, const FrameLimits& limits,
                          size_t* consumed) {
  *consumed = 0;
  if (buf.size() < kHeaderBytes) {
    return Status::OutOfRange("incomplete frame header");
  }
  FrameType type;
  uint32_t payload_len = 0;
  WMP_RETURN_IF_ERROR(ValidateHeader(buf.data(), limits, &type, &payload_len));
  if (buf.size() < kHeaderBytes + payload_len) {
    return Status::OutOfRange("incomplete frame payload");
  }
  Frame frame;
  frame.type = type;
  frame.payload.assign(buf.data() + kHeaderBytes, payload_len);
  *consumed = kHeaderBytes + payload_len;
  return frame;
}

Status WriteFrame(int fd, FrameType type, std::string_view payload) {
  if (payload.size() > UINT32_MAX) {
    return Status::InvalidArgument("frame payload exceeds 4 GB");
  }
  // One header+payload buffer, one write loop: a frame is never interleaved
  // with another thread's frame as long as callers serialize per fd.
  const std::string wire = EncodeFrame(type, payload);
  return WriteAll(fd, wire.data(), wire.size());
}

Result<Frame> ReadFrame(int fd, const FrameLimits& limits) {
  if (FaultInjector* chaos = ActiveFaultInjector()) {
    WMP_RETURN_IF_ERROR(chaos->BeforeRead(fd));
  }
  char header[kHeaderBytes];
  size_t got = 0;
  WMP_RETURN_IF_ERROR(ReadAll(fd, header, sizeof(header), &got));
  if (got == 0) return Status::NotFound("peer disconnected");
  if (got < sizeof(header)) {
    return Status::IOError(
        StrFormat("connection closed inside a frame header (%zu/%zu bytes)",
                  got, sizeof(header)));
  }
  FrameType type;
  uint32_t payload_len = 0;
  WMP_RETURN_IF_ERROR(ValidateHeader(header, limits, &type, &payload_len));
  Frame frame;
  frame.type = type;
  frame.payload.resize(payload_len);
  if (payload_len > 0) {
    WMP_RETURN_IF_ERROR(ReadAll(fd, frame.payload.data(), payload_len, &got));
    if (got < payload_len) {
      return Status::IOError(
          StrFormat("connection closed inside a frame payload (%zu/%u bytes)",
                    got, payload_len));
    }
  }
  return frame;
}

}  // namespace wmp::net
