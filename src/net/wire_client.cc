#include "net/wire_client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "net/backoff.h"
#include "net/socket.h"
#include "util/hash.h"
#include "util/io.h"
#include "util/strings.h"

namespace wmp::net {

WireClient::WireClient(std::string address, WireClientOptions options)
    : address_(std::move(address)),
      options_(options),
      backoff_state_(options.jitter_seed ^
                     util::HashBytes(address_.data(), address_.size(),
                                     0x574D504A49545452ull)) {}  // "WMPJITTR"

WireClient::~WireClient() { Close(); }

Status WireClient::Connect() {
  if (fd_ >= 0) return Status::OK();
  WMP_ASSIGN_OR_RETURN(fd_, ConnectTo(address_, options_.connect_timeout_ms));
  if (Status st = SetIoDeadlines(fd_, options_.read_timeout_ms,
                                 options_.write_timeout_ms);
      !st.ok()) {
    Close();
    return st;
  }
  return Status::OK();
}

void WireClient::Close() {
  CloseConnection(fd_);
  fd_ = -1;
}

Result<Frame> WireClient::RoundTrip(FrameType request, std::string payload,
                                    FrameType expected_response,
                                    bool idempotent) {
  FrameLimits limits;
  limits.max_payload_bytes = options_.max_payload_bytes;
  // One transparent retry for failures that provably happened BEFORE the
  // server could have executed the request: Connect and WriteFrame
  // failures mean at most a truncated frame reached the peer (which it
  // discards undecoded), so any request is safe to resend. A failed
  // *response read* is different — the server may well have executed the
  // request and died writing back — so only idempotent requests (score,
  // ping, stats) retry across it; publish/rollback surface the error and
  // let the operator check registry state rather than risk applying a
  // rollout twice.
  // Retries pace themselves with bounded exponential backoff + full
  // jitter, so a fleet of clients retrying against a recovering server
  // doesn't arrive in synchronized waves.
  const int attempts = options_.max_attempts < 1 ? 1 : options_.max_attempts;
  Status last_error = Status::OK();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      const uint32_t delay_ms =
          BackoffDelayMs(&backoff_state_, attempt - 1,
                         options_.backoff_base_ms, options_.backoff_cap_ms);
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
    }
    if (Status st = Connect(); !st.ok()) {
      last_error = st;
      continue;
    }
    Status write = WriteFrame(fd_, request, payload);
    if (!write.ok()) {
      last_error = write;
      Close();
      continue;
    }
    auto response = ReadFrame(fd_, limits);
    if (!response.ok()) {
      last_error = response.status().IsNotFound()
                       ? Status::IOError("server closed the connection")
                       : response.status();
      Close();
      if (!idempotent) return last_error;
      continue;
    }
    if (response->type == FrameType::kError) {
      // Protocol-level rejection: the connection is still framed and
      // reusable; only this request failed.
      return StatusFromError(DecodeErrorBody(response->payload));
    }
    if (response->type != expected_response) {
      Close();  // desynchronized — do not reuse the stream
      return Status::Internal(
          StrFormat("expected %s frame, got %s",
                    FrameTypeName(expected_response),
                    FrameTypeName(response->type)));
    }
    return std::move(*response);
  }
  return last_error;
}

Status WireClient::Ping() {
  WMP_ASSIGN_OR_RETURN(Frame pong,
                       RoundTrip(FrameType::kPing, "wmp", FrameType::kPong));
  if (pong.payload != "wmp") {
    return Status::Internal("ping payload not echoed");
  }
  return Status::OK();
}

Result<std::vector<Result<double>>> WireClient::ScoreWorkloads(
    std::string_view tenant,
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<core::WorkloadBatch>& batches) {
  WMP_ASSIGN_OR_RETURN(
      Frame frame,
      RoundTrip(FrameType::kScoreRequest,
                EncodeScoreRequest(tenant, records, batches),
                FrameType::kScoreResponse));
  WMP_ASSIGN_OR_RETURN(ScoreResponse response,
                       DecodeScoreResponse(frame.payload));
  if (response.size() != batches.size()) {
    return Status::Internal(
        StrFormat("server answered %zu workloads for a %zu-workload request",
                  response.size(), batches.size()));
  }
  std::vector<Result<double>> outcomes;
  outcomes.reserve(response.size());
  for (size_t i = 0; i < response.size(); ++i) {
    if (response.ok[i]) {
      outcomes.emplace_back(response.predictions[i]);
    } else {
      outcomes.emplace_back(Status::Internal(response.errors[i]));
    }
  }
  return outcomes;
}

Result<uint64_t> WireClient::Publish(std::string_view name,
                                     const core::LearnedWmpModel& model) {
  BinaryWriter artifact;
  WMP_RETURN_IF_ERROR(model.Serialize(&artifact));
  PublishRequest request;
  request.model_name = std::string(name);
  request.model_bytes = artifact.buffer();
  // EncodePublishRequest checksums the artifact bytes; the server
  // recomputes over what it received and refuses the rollout on mismatch.
  WMP_ASSIGN_OR_RETURN(
      Frame frame,
      RoundTrip(FrameType::kPublishRequest, EncodePublishRequest(request),
                FrameType::kPublishResponse, /*idempotent=*/false));
  WMP_ASSIGN_OR_RETURN(PublishResponse response,
                       DecodePublishResponse(frame.payload));
  return response.registry_epoch;
}

Result<uint64_t> WireClient::Rollback(std::string_view name) {
  RollbackRequest request;
  request.model_name = std::string(name);
  WMP_ASSIGN_OR_RETURN(
      Frame frame,
      RoundTrip(FrameType::kRollbackRequest, EncodeRollbackRequest(request),
                FrameType::kRollbackResponse, /*idempotent=*/false));
  WMP_ASSIGN_OR_RETURN(RollbackResponse response,
                       DecodeRollbackResponse(frame.payload));
  return response.registry_epoch;
}

Result<StatsResponse> WireClient::Stats() {
  WMP_ASSIGN_OR_RETURN(Frame frame,
                       RoundTrip(FrameType::kStatsRequest, "",
                                 FrameType::kStatsResponse));
  return DecodeStatsResponse(frame.payload);
}

Result<HealthResponse> WireClient::Health(uint64_t nonce) {
  HealthRequest request;
  request.nonce = nonce;
  WMP_ASSIGN_OR_RETURN(
      Frame frame, RoundTrip(FrameType::kHealthRequest,
                             EncodeHealthRequest(request),
                             FrameType::kHealthResponse));
  WMP_ASSIGN_OR_RETURN(HealthResponse response,
                       DecodeHealthResponse(frame.payload));
  if (response.nonce != nonce) {
    Close();  // a stale probe answer means the stream desynchronized
    return Status::Internal(
        StrFormat("health probe nonce mismatch (sent %llu, got %llu)",
                  static_cast<unsigned long long>(nonce),
                  static_cast<unsigned long long>(response.nonce)));
  }
  return response;
}

Result<StageResponse> WireClient::Stage(std::string_view name,
                                        const std::string& model_bytes) {
  PublishRequest request;
  request.model_name = std::string(name);
  request.model_bytes = model_bytes;
  // Staging is idempotent (a resend parks the identical artifact under a
  // fresh ticket), so a lost stage RESPONSE is safe to retry — unlike
  // Commit below, which installs.
  WMP_ASSIGN_OR_RETURN(
      Frame frame,
      RoundTrip(FrameType::kStageRequest, EncodePublishRequest(request),
                FrameType::kStageResponse));
  WMP_ASSIGN_OR_RETURN(StageResponse response,
                       DecodeStageResponse(frame.payload));
  const uint64_t local_hash = ArtifactChecksum(model_bytes);
  if (response.artifact_hash != local_hash) {
    return Status::Internal(StrFormat(
        "node staged artifact %016llx but %016llx was sent",
        static_cast<unsigned long long>(response.artifact_hash),
        static_cast<unsigned long long>(local_hash)));
  }
  return response;
}

Result<PublishResponse> WireClient::Commit(uint64_t ticket) {
  TicketRequest request;
  request.ticket = ticket;
  WMP_ASSIGN_OR_RETURN(
      Frame frame,
      RoundTrip(FrameType::kCommitRequest, EncodeTicketRequest(request),
                FrameType::kCommitResponse, /*idempotent=*/false));
  return DecodePublishResponse(frame.payload);
}

Result<AbortResponse> WireClient::Abort(uint64_t ticket) {
  TicketRequest request;
  request.ticket = ticket;
  WMP_ASSIGN_OR_RETURN(
      Frame frame,
      RoundTrip(FrameType::kAbortRequest, EncodeTicketRequest(request),
                FrameType::kAbortResponse));
  return DecodeAbortResponse(frame.payload);
}

}  // namespace wmp::net
