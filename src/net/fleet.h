#ifndef WMP_NET_FLEET_H_
#define WMP_NET_FLEET_H_

/// \file fleet.h
/// Fault-tolerant fleet router: fans tenants across several predictor
/// nodes, survives node deaths under traffic, and extends the all-or-
/// nothing rollout guarantee from cross-shard (PR 5) to cross-node.
///
/// ## Topology
///
/// One FleetRouter holds, per predictor node, one pipelined scoring
/// connection (net::AsyncWireClient, the PR 7 transport) plus one blocking
/// control-plane connection (net::WireClient with deadlines) for probes
/// and rollouts. Tenants hash onto nodes; every scoring call can fail over
/// to a replica, so a node death under traffic costs retries — never a
/// failed client call.
///
/// ## Per-node state machine
///
///       every success
///     ┌───────────────────────────────┐
///     ▼                               │
///   HEALTHY ──failure──▶ SUSPECT ──┐  │
///     ▲                    │       │failures reach
///     │            success │       │down_after_failures
///     │                    ▼       ▼
///     └──probe ok──── PROBING ◀── DOWN
///                        │  (probe thread adopts the node)
///                        └──probe fails──▶ DOWN
///
/// Transitions are driven by BOTH request outcomes and a periodic
/// health/epoch probe (kHealthRequest). Healthy and suspect nodes serve
/// traffic (suspect only when no healthy candidate remains); down nodes
/// serve nothing until a probe succeeds. The probe also carries the
/// node's registry epoch, so a node that restarted with stale state is
/// caught even while it answers pings happily (see engine/fleet_map.h).
///
/// ## Two-phase fleet publish
///
/// PublishAll serializes the artifact ONCE and runs:
///   phase 1  STAGE on every node: validate checksum + deserialize, park
///            without installing. Any failure -> ABORT on all staged
///            nodes; no node changed epoch.
///   phase 2  COMMIT (the ticket) on every node. A commit failure at node
///            k triggers compensation: ROLLBACK on nodes 0..k-1 (already
///            committed) and ABORT on k+1.. (still staged) — the fleet is
///            never left serving mixed epochs.
/// RollbackAll drives every live node's single-node rollback and reports
/// per-node outcomes; the epoch map flags any divergence it leaves.
///
/// ## Determinism
///
/// Retry jitter and tenant hashing are splitmix64-seeded; paired with a
/// net::FaultInjector script, a chaos test replays the same routing and
/// fault sequence every run.
///
/// Thread-safety: ScoreWorkloads may be called from many threads;
/// PublishAll/RollbackAll serialize on an internal rollout mutex.

#include <cstdint>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/learned_wmp.h"
#include "core/workload.h"
#include "engine/fleet_map.h"
#include "net/async_client.h"
#include "net/wire_client.h"
#include "util/status.h"
#include "workloads/query_record.h"

namespace wmp::net {

enum class NodeHealth : uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kDown = 2,
  kProbing = 3,
};

const char* NodeHealthName(NodeHealth health);

struct FleetRouterOptions {
  /// Deadlines on everything the router does to a node: connect, a
  /// pipelined score response, a control-plane round trip. A hung node
  /// must cost a bounded wait, then the state machine takes over.
  int connect_timeout_ms = 1000;
  int request_timeout_ms = 2000;  ///< per pipelined score (AsyncWireClient)
  int control_timeout_ms = 2000;  ///< read/write deadline, control plane
  /// Probe cadence of the background health thread (<= 0 disables the
  /// thread; tests drive ProbeNow() instead for determinism).
  int probe_interval_ms = 200;
  /// Consecutive failures that take a node suspect -> down. The first
  /// failure always demotes healthy -> suspect.
  int down_after_failures = 3;
  /// Scoring attempts per call across failovers (>= 1).
  int max_score_attempts = 4;
  /// Bounded-backoff-with-jitter pacing between attempts (net/backoff.h).
  uint32_t backoff_base_ms = 5;
  uint32_t backoff_cap_ms = 200;
  /// Seeds tenant hashing and retry jitter (deterministic chaos tests).
  uint64_t seed = 1;
  size_t max_inflight = 32;  ///< per-node pipelined window
  size_t max_payload_bytes = 64ull << 20;
};

/// Point-in-time view of one node (status output + test assertions).
struct FleetNodeStatus {
  std::string address;
  NodeHealth health = NodeHealth::kProbing;
  int consecutive_failures = 0;
  uint64_t observed_epoch = 0;
  uint64_t scores_ok = 0;
  uint64_t scores_failed = 0;
  uint64_t probes_ok = 0;
  uint64_t probes_failed = 0;
};

/// What happened to one node during a fleet rollout.
struct FleetNodeRollout {
  std::string address;
  bool staged = false;
  bool committed = false;
  bool aborted = false;      ///< staged artifact discarded (compensation)
  bool compensated = false;  ///< committed, then rolled back (compensation)
  uint64_t ticket = 0;
  uint64_t epoch = 0;  ///< epoch the node reported for the op
  std::string error;
};

struct FleetRolloutReport {
  bool ok = false;
  uint64_t epoch = 0;  ///< fleet-wide epoch after success
  std::string failure;  ///< why the rollout failed (empty when ok)
  std::vector<FleetNodeRollout> nodes;
};

/// Router-level counters (per-node ones live in FleetNodeStatus).
struct FleetRouterCounters {
  uint64_t scores = 0;          ///< client scoring calls served
  uint64_t score_failures = 0;  ///< calls that exhausted every attempt
  uint64_t score_retries = 0;   ///< extra attempts spent (failovers)
  uint64_t publishes = 0;
  uint64_t rollbacks = 0;
  uint64_t probe_sweeps = 0;
};

/// \brief Health-tracking, failover-scoring, two-phase-publishing router.
class FleetRouter {
 public:
  explicit FleetRouter(std::vector<std::string> node_addresses,
                       FleetRouterOptions options = {});
  ~FleetRouter();
  FleetRouter(const FleetRouter&) = delete;
  FleetRouter& operator=(const FleetRouter&) = delete;

  /// Runs an initial probe sweep (so health states start from evidence,
  /// not hope) and starts the background probe thread. Start succeeds
  /// even with every node down — the fleet may come up after the router.
  Status Start();

  /// Stops the probe thread and drops every connection. Idempotent; the
  /// destructor calls it.
  void Stop();

  /// Scores one tenant request with failover: pick the tenant's node
  /// among the healthiest candidates, retry with backoff+jitter on
  /// another replica on any failure. Fails only when every attempt on
  /// every eligible node is exhausted.
  Result<std::vector<Result<double>>> ScoreWorkloads(
      std::string_view tenant,
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<core::WorkloadBatch>& batches);

  /// Two-phase fleet publish (see the file comment). Serializes `model`
  /// once; every configured node must stage and commit, a down node fails
  /// the rollout (and costs nothing — stage installs nothing). The
  /// returned report is also produced for FAILED rollouts; `ok` and
  /// `failure` summarize, per-node entries itemize.
  FleetRolloutReport PublishAll(std::string_view name,
                                const core::LearnedWmpModel& model);

  /// Fleet-wide rollback to each node's previous epoch.
  FleetRolloutReport RollbackAll(std::string_view name);

  /// One synchronous probe sweep over every node (what the background
  /// thread runs on its interval). Deterministic hook for tests.
  void ProbeNow();

  std::vector<FleetNodeStatus> Nodes() const;
  FleetRouterCounters counters() const;
  const engine::FleetEpochMap& epoch_map() const { return epoch_map_; }
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    std::string address;
    NodeHealth health = NodeHealth::kProbing;
    int consecutive_failures = 0;
    uint64_t observed_epoch = 0;
    uint64_t scores_ok = 0;
    uint64_t scores_failed = 0;
    uint64_t probes_ok = 0;
    uint64_t probes_failed = 0;
    /// Pipelined data plane; replaced on stream death (under conn_mutex).
    std::shared_ptr<AsyncWireClient> pipe;
    /// Blocking control plane (probes, stage/commit/abort/rollback).
    std::unique_ptr<WireClient> control;
    std::mutex conn_mutex;  ///< guards pipe/control setup + control use
  };

  /// Which activity an outcome came from — scoring and probing keep their
  /// own counters; all three drive the same health state machine.
  enum class OutcomeKind { kScore, kProbe, kControl };

  /// Picks the scoring node for `tenant_hash`: healthy candidates first,
  /// then suspect, then probing (unknown beats known-dead), then — as the
  /// final resort — down nodes; never one already in `tried`.
  Node* PickNode(uint64_t tenant_hash, const std::vector<Node*>& tried);
  /// Returns a live pipelined client, (re)connecting if needed.
  Result<std::shared_ptr<AsyncWireClient>> EnsurePipe(Node* node);
  /// One scoring attempt against one node.
  Result<std::vector<Result<double>>> ScoreOnNode(
      Node* node, std::string_view tenant,
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<core::WorkloadBatch>& batches);
  /// Runs `op` against the node's control client under its conn_mutex,
  /// connecting first if needed; a transport error resets the client.
  template <typename Op>
  auto WithControl(Node* node, Op&& op)
      -> decltype(op(static_cast<WireClient*>(nullptr)));

  void MarkSuccess(Node* node, OutcomeKind kind);
  void MarkFailure(Node* node, OutcomeKind kind);
  Status ProbeNode(Node* node);
  void ProbeLoop();

  std::vector<std::unique_ptr<Node>> nodes_;
  FleetRouterOptions options_;
  engine::FleetEpochMap epoch_map_;

  mutable std::mutex mutex_;  ///< health/counters state on every node
  FleetRouterCounters counters_;
  uint64_t probe_nonce_ = 1;

  std::mutex rollout_mutex_;  ///< serializes PublishAll/RollbackAll

  std::thread probe_thread_;
  std::mutex probe_mutex_;
  std::condition_variable probe_cv_;
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace wmp::net

#endif  // WMP_NET_FLEET_H_
