#include "net/reactor_server.h"

#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include "util/strings.h"

namespace wmp::net {

namespace {

// Per-loop-iteration read cap for one connection: level-triggered
// readiness re-fires immediately, so capping keeps one firehose client
// from starving its neighbors without losing any bytes.
constexpr size_t kMaxReadPerEvent = 512u << 10;

// Compact a consumed buffer prefix once it crosses this, so long-lived
// connections don't accrete dead bytes.
constexpr size_t kCompactThreshold = 64u << 10;

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

}  // namespace

// ---------------------------------------------------------------------------
// Poller: identical interest bookkeeping, epoll or poll(2) behind Wait().

class ReactorServer::Poller {
 public:
  Status Init() {
#ifdef __linux__
    epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd_ < 0) return Errno("epoll_create1");
#endif
    return Status::OK();
  }

  ~Poller() {
#ifdef __linux__
    CloseFd(epfd_);
#endif
  }

  void Add(int fd, bool readable, bool writable) {
    interest_[fd] = Mask(readable, writable);
#ifdef __linux__
    epoll_event ev{};
    ev.events = EpollMask(readable, writable);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
#endif
  }

  void Update(int fd, bool readable, bool writable) {
    interest_[fd] = Mask(readable, writable);
#ifdef __linux__
    epoll_event ev{};
    ev.events = EpollMask(readable, writable);
    ev.data.fd = fd;
    ::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev);
#endif
  }

  void Remove(int fd) {
    interest_.erase(fd);
#ifdef __linux__
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
  }

  /// Blocks up to `timeout_ms` (-1 = indefinitely) and appends ready fds
  /// to `*out`. EINTR counts as an empty wake.
  Status Wait(int timeout_ms, std::vector<PollEvent>* out) {
    out->clear();
#ifdef __linux__
    epoll_event events[64];
    const int n = ::epoll_wait(epfd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();
      return Errno("epoll_wait");
    }
    for (int i = 0; i < n; ++i) {
      PollEvent ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.error = (events[i].events & EPOLLERR) != 0;
      out->push_back(ev);
    }
#else
    pollfds_.clear();
    for (const auto& [fd, mask] : interest_) {
      pollfd p{};
      p.fd = fd;
      if (mask & kRead) p.events |= POLLIN;
      if (mask & kWrite) p.events |= POLLOUT;
      pollfds_.push_back(p);
    }
    const int n = ::poll(pollfds_.data(),
                         static_cast<nfds_t>(pollfds_.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return Status::OK();
      return Errno("poll");
    }
    for (const pollfd& p : pollfds_) {
      if (p.revents == 0) continue;
      PollEvent ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out->push_back(ev);
    }
#endif
    return Status::OK();
  }

 private:
  static constexpr uint32_t kRead = 1;
  static constexpr uint32_t kWrite = 2;
  static uint32_t Mask(bool readable, bool writable) {
    return (readable ? kRead : 0) | (writable ? kWrite : 0);
  }
#ifdef __linux__
  static uint32_t EpollMask(bool readable, bool writable) {
    // Level-triggered on purpose: combined with the per-event read cap it
    // gives free fairness (unserviced bytes re-arm the fd), and the poll()
    // fallback behaves identically.
    return (readable ? EPOLLIN : 0u) | (writable ? EPOLLOUT : 0u);
  }
  int epfd_ = -1;
#else
  std::vector<pollfd> pollfds_;
#endif
  std::unordered_map<int, uint32_t> interest_;
};

// ---------------------------------------------------------------------------

ReactorServer::ReactorServer(engine::ScoringService* service,
                             engine::ModelRegistry* registry,
                             std::string model_name,
                             ReactorServerOptions options)
    : dispatcher_(service, registry, std::move(model_name)),
      options_(options) {
  limits_.max_payload_bytes = options_.max_payload_bytes;
}

ReactorServer::~ReactorServer() { Shutdown(); }

Status ReactorServer::Listen(const std::string& address) {
  WMP_RETURN_IF_ERROR(listener_.Listen(address, options_.backlog));
  WMP_RETURN_IF_ERROR(SetNonBlocking(listener_.fd(), true));
  // Wakeup channel: the completion doorbell and Shutdown() both write it,
  // the loop reads it — the only cross-thread signal into the reactor.
#ifdef __linux__
  wake_read_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_read_fd_ < 0) return Errno("eventfd");
  wake_write_fd_ = wake_read_fd_;
#else
  int pipefd[2];
  if (::pipe(pipefd) < 0) return Errno("pipe");
  wake_read_fd_ = pipefd[0];
  wake_write_fd_ = pipefd[1];
  WMP_RETURN_IF_ERROR(SetNonBlocking(wake_read_fd_, true));
  WMP_RETURN_IF_ERROR(SetNonBlocking(wake_write_fd_, true));
#endif
  poller_ = std::make_unique<Poller>();
  return poller_->Init();
}

Status ReactorServer::Serve() {
  if (!listener_.listening() || poller_ == nullptr) {
    return Status::FailedPrecondition("Serve before Listen");
  }
  if (loop_running_.exchange(true)) {
    return Status::FailedPrecondition("server already running");
  }
  RunLoop();
  return Status::OK();
}

Status ReactorServer::Start() {
  if (!listener_.listening() || poller_ == nullptr) {
    return Status::FailedPrecondition("Start before Listen");
  }
  if (loop_running_.exchange(true)) {
    return Status::FailedPrecondition("server already running");
  }
  serve_thread_ = std::thread([this] { RunLoop(); });
  return Status::OK();
}

void ReactorServer::WakeLoop() {
  const uint64_t one = 1;
  // Nonblocking: EAGAIN means the doorbell is already pending, which is
  // all a doorbell needs.
  [[maybe_unused]] ssize_t n =
      ::write(wake_write_fd_, &one, sizeof(one));
}

void ReactorServer::RunLoop() {
  poller_->Add(listener_.fd(), /*readable=*/true, /*writable=*/false);
  poller_->Add(wake_read_fd_, /*readable=*/true, /*writable=*/false);
  dispatcher_.service()->SetCompletionCallback([this] { WakeLoop(); });
  std::vector<PollEvent> events;
  while (!shutting_down_.load(std::memory_order_acquire)) {
    if (!poller_->Wait(NextTimeoutMs(), &events).ok()) break;
    for (const PollEvent& ev : events) {
      if (ev.fd == wake_read_fd_) {
        // Drain the doorbell; the post-loop DrainCompletions does the work.
        char buf[64];
        while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (ev.fd == listener_.fd()) {
        AcceptNew();
        continue;
      }
      auto it = conns_.find(ev.fd);
      if (it == conns_.end()) continue;  // torn down earlier this iteration
      std::shared_ptr<Conn> conn = it->second;
      if (ev.error) {
        Teardown(conn);
        continue;
      }
      if (ev.readable) OnReadable(conn);
      if (conn->fd >= 0 && ev.writable) OnWritable(conn);
    }
    // Futures can resolve at submit time (validation failures) or via the
    // doorbell (service flushes) — either way they are collected here,
    // once per loop iteration.
    DrainCompletions();
    CloseIdleConns();
  }
  dispatcher_.service()->SetCompletionCallback(nullptr);
  // Park no future past the loop: Submit's borrow says each request's
  // records must outlive its futures, and the requests die with pendings_.
  for (auto& pending : pendings_) {
    for (auto& future : pending->futures) {
      if (future.valid()) future.wait();
    }
  }
  pendings_.clear();
  std::vector<std::shared_ptr<Conn>> open;
  open.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) open.push_back(conn);
  for (auto& conn : open) Teardown(conn);
  loop_running_.store(false, std::memory_order_release);
}

void ReactorServer::AcceptNew() {
  for (;;) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      // EMFILE/ECONNABORTED burst: count it and return to the loop; the
      // level-triggered listener re-arms, and closing idle connections is
      // what actually frees descriptors.
      accept_failures_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (!SetNonBlocking(fd, true).ok()) {
      CloseConnection(fd);
      accept_failures_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->last_activity = std::chrono::steady_clock::now();
    conn->registered_read = true;
    conns_.emplace(fd, conn);
    poller_->Add(fd, /*readable=*/true, /*writable=*/false);
  }
}

void ReactorServer::OnWritable(const std::shared_ptr<Conn>& conn) {
  TryWrite(conn);
}

void ReactorServer::OnReadable(const std::shared_ptr<Conn>& conn) {
  if (conn->read_paused || conn->closing) return;
  char chunk[64u << 10];
  size_t read_this_event = 0;
  bool peer_eof = false;
  for (;;) {
    // ReadSome (net/socket.h) is the shared EINTR-correct primitive; read()
    // under it serves sockets and the pipes tests drive the reactor with.
    const ssize_t n = ReadSome(conn->fd, chunk, sizeof(chunk));
    if (n > 0) {
      conn->rbuf.append(chunk, static_cast<size_t>(n));
      conn->last_activity = std::chrono::steady_clock::now();
      read_this_event += static_cast<size_t>(n);
      if (read_this_event >= kMaxReadPerEvent) break;
      continue;
    }
    if (n == 0) {
      // Peer hung up — but its final bytes may have arrived in THIS event,
      // ahead of the EOF, and may hold complete frames (a publish followed
      // by an immediate close must still apply). Parse below, answer what
      // can be answered (the peer may have only half-closed), then drain
      // and close.
      peer_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    Teardown(conn);
    return;
  }
  ParseFrames(conn);
  if (peer_eof && conn->fd >= 0 && !conn->closing) {
    conn->closing = true;
    conn->rbuf.clear();  // a trailing partial frame can never complete
    conn->rpos = 0;
    UpdateInterest(conn);
    MaybeFinishClose(conn);
  }
}

void ReactorServer::ParseFrames(const std::shared_ptr<Conn>& conn) {
  while (conn->fd >= 0 && !conn->closing) {
    const std::string_view unparsed =
        std::string_view(conn->rbuf).substr(conn->rpos);
    size_t consumed = 0;
    auto frame = DecodeFrame(unparsed, limits_, &consumed);
    if (!frame.ok()) {
      if (frame.status().IsOutOfRange()) break;  // need more bytes
      // Bad magic or oversize announced length: the stream is
      // desynchronized (or hostile) and there is no next frame boundary
      // to find. Answer once, flush, close — neighbors keep streaming.
      PushOrdered(conn, ErrorFrame(frame.status()));
      conn->closing = true;
      conn->rbuf.clear();
      conn->rpos = 0;
      if (conn->fd >= 0) {
        UpdateInterest(conn);
        MaybeFinishClose(conn);
      }
      return;
    }
    conn->rpos += consumed;
    HandleFrame(conn, std::move(*frame));
  }
  if (conn->fd < 0) return;
  if (conn->rpos == conn->rbuf.size()) {
    conn->rbuf.clear();
    conn->rpos = 0;
  } else if (conn->rpos >= kCompactThreshold) {
    conn->rbuf.erase(0, conn->rpos);
    conn->rpos = 0;
  }
}

void ReactorServer::HandleFrame(const std::shared_ptr<Conn>& conn,
                                Frame frame) {
  frames_served_.fetch_add(1, std::memory_order_relaxed);
  switch (frame.type) {
    case FrameType::kPing:
      PushOrdered(conn, Frame{FrameType::kPong, std::move(frame.payload)});
      return;
    case FrameType::kScoreRequest:
      HandleScoreFrame(conn, frame);
      return;
    case FrameType::kScoreRequestPipelined:
      HandlePipelinedScoreFrame(conn, frame);
      return;
    case FrameType::kPublishRequest:
      // Control plane: executes inline on the loop thread. A rollout
      // serializes on the service's publish mutex anyway; the few ms of
      // deserialize+swap are invisible next to training a replacement.
      PushOrdered(conn, dispatcher_.HandlePublish(frame));
      return;
    case FrameType::kRollbackRequest:
      PushOrdered(conn, dispatcher_.HandleRollback(frame));
      return;
    case FrameType::kStatsRequest:
      PushOrdered(conn, dispatcher_.HandleStats(WireCounters()));
      return;
    case FrameType::kHealthRequest:
      PushOrdered(conn, dispatcher_.HandleHealth(frame));
      return;
    case FrameType::kStageRequest:
      // Inline like publish: stage validates + deserializes but installs
      // nothing; commit is the same PublishAll a kPublishRequest runs.
      PushOrdered(conn, dispatcher_.HandleStage(frame));
      return;
    case FrameType::kCommitRequest:
      PushOrdered(conn, dispatcher_.HandleCommit(frame));
      return;
    case FrameType::kAbortRequest:
      PushOrdered(conn, dispatcher_.HandleAbort(frame));
      return;
    default:
      PushOrdered(conn, RequestDispatcher::UnexpectedFrame(frame.type));
      return;
  }
}

void ReactorServer::HandleScoreFrame(const std::shared_ptr<Conn>& conn,
                                     const Frame& frame) {
  auto decoded = DecodeScoreRequest(frame.payload);
  if (!decoded.ok()) {
    PushOrdered(conn, ErrorFrame(decoded.status()));
    return;
  }
  auto pending = std::make_unique<PendingScore>();
  pending->conn = conn;
  pending->request = std::make_unique<ScoreRequest>(std::move(*decoded));
  pending->slot_id = OpenSlot(conn);
  pending->futures = dispatcher_.SubmitScore(*pending->request);
  pending->outcomes.reserve(pending->futures.size());
  ++conn->pending_scores;
  pendings_.push_back(std::move(pending));
}

void ReactorServer::HandlePipelinedScoreFrame(
    const std::shared_ptr<Conn>& conn, const Frame& frame) {
  std::string body;
  auto correlation_id = DecodePipelinedPayload(frame.payload, &body);
  if (!correlation_id.ok()) {
    // No id to indict: degrade to a stream-level error, which the async
    // client treats as fatal for its in-flight window.
    PushOrdered(conn, ErrorFrame(correlation_id.status()));
    return;
  }
  pipelined_frames_.fetch_add(1, std::memory_order_relaxed);
  auto decoded = DecodeScoreRequest(body);
  if (!decoded.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    ErrorBody error;
    error.code = static_cast<uint8_t>(decoded.status().code());
    error.message = decoded.status().message();
    AppendFrame(conn,
                Frame{FrameType::kErrorPipelined,
                      EncodePipelinedPayload(*correlation_id,
                                             EncodeErrorBody(error))});
    return;
  }
  auto pending = std::make_unique<PendingScore>();
  pending->conn = conn;
  pending->request = std::make_unique<ScoreRequest>(std::move(*decoded));
  pending->pipelined = true;
  pending->correlation_id = *correlation_id;
  pending->futures = dispatcher_.SubmitScore(*pending->request);
  pending->outcomes.reserve(pending->futures.size());
  ++conn->pending_scores;
  pendings_.push_back(std::move(pending));
}

void ReactorServer::PushOrdered(const std::shared_ptr<Conn>& conn,
                                Frame frame) {
  if (frame.type == FrameType::kError) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  ResponseSlot slot;
  slot.id = conn->next_slot_id++;
  slot.ready = true;
  slot.frame = std::move(frame);
  conn->slots.push_back(std::move(slot));
  FlushReadySlots(conn);
}

uint64_t ReactorServer::OpenSlot(const std::shared_ptr<Conn>& conn) {
  ResponseSlot slot;
  slot.id = conn->next_slot_id++;
  slot.ready = false;
  conn->slots.push_back(std::move(slot));
  return conn->slots.back().id;
}

void ReactorServer::CompleteSlot(const std::shared_ptr<Conn>& conn,
                                 uint64_t slot_id, Frame frame) {
  for (ResponseSlot& slot : conn->slots) {
    if (slot.id == slot_id) {
      if (frame.type == FrameType::kError) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      slot.frame = std::move(frame);
      slot.ready = true;
      break;
    }
  }
  FlushReadySlots(conn);
}

void ReactorServer::FlushReadySlots(const std::shared_ptr<Conn>& conn) {
  // Plain responses leave in request order: only the longest READY prefix
  // may be written. Pipelined responses never enter the slot queue.
  while (!conn->slots.empty() && conn->slots.front().ready) {
    Frame frame = std::move(conn->slots.front().frame);
    conn->slots.pop_front();
    AppendFrame(conn, frame);
    if (conn->fd < 0) return;  // write failure tore the connection down
  }
}

void ReactorServer::AppendFrame(const std::shared_ptr<Conn>& conn,
                                const Frame& frame) {
  if (conn->fd < 0) return;
  conn->wbuf += EncodeFrame(frame.type, frame.payload);
  TryWrite(conn);
}

void ReactorServer::TryWrite(const std::shared_ptr<Conn>& conn) {
  while (conn->wpos < conn->wbuf.size()) {
    const size_t len = conn->wbuf.size() - conn->wpos;
    // SendSome (net/socket.h): EINTR-retried, SIGPIPE-suppressed, with a
    // write() fallback for the pipes tests drive the reactor with.
    const ssize_t n = SendSome(conn->fd, conn->wbuf.data() + conn->wpos, len);
    if (n > 0) {
      conn->wpos += static_cast<size_t>(n);
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    Teardown(conn);  // peer gone mid-response
    return;
  }
  if (conn->wpos == conn->wbuf.size()) {
    conn->wbuf.clear();
    conn->wpos = 0;
  } else if (conn->wpos >= kCompactThreshold) {
    conn->wbuf.erase(0, conn->wpos);
    conn->wpos = 0;
  }
  const size_t buffered = conn->wbuf.size() - conn->wpos;
  // Backpressure: a reader that stopped draining its socket stops feeding
  // us new requests, instead of growing wbuf without bound. Resume at
  // half the watermark so the toggle doesn't flap per frame.
  if (!conn->read_paused && buffered > options_.write_high_watermark) {
    conn->read_paused = true;
    backpressure_pauses_.fetch_add(1, std::memory_order_relaxed);
  } else if (conn->read_paused &&
             buffered <= options_.write_high_watermark / 2) {
    conn->read_paused = false;
  }
  UpdateInterest(conn);
  MaybeFinishClose(conn);
}

void ReactorServer::UpdateInterest(const std::shared_ptr<Conn>& conn) {
  if (conn->fd < 0) return;
  const bool want_read = !conn->read_paused && !conn->closing;
  const bool want_write = conn->wpos < conn->wbuf.size();
  if (want_read != conn->registered_read ||
      want_write != conn->registered_write) {
    conn->registered_read = want_read;
    conn->registered_write = want_write;
    poller_->Update(conn->fd, want_read, want_write);
  }
}

void ReactorServer::DrainCompletions() {
  for (size_t i = 0; i < pendings_.size();) {
    PendingScore& pending = *pendings_[i];
    while (pending.outcomes.size() < pending.futures.size()) {
      auto& future = pending.futures[pending.outcomes.size()];
      if (future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        break;
      }
      pending.outcomes.push_back(future.get());
    }
    if (pending.outcomes.size() < pending.futures.size()) {
      ++i;
      continue;
    }
    const std::shared_ptr<Conn>& conn = pending.conn;
    if (conn->fd >= 0) {
      Frame response =
          RequestDispatcher::BuildScoreResponse(std::move(pending.outcomes));
      if (pending.pipelined) {
        AppendFrame(conn, Frame{FrameType::kScoreResponsePipelined,
                                EncodePipelinedPayload(
                                    pending.correlation_id,
                                    response.payload)});
      } else {
        CompleteSlot(conn, pending.slot_id, std::move(response));
      }
    }
    --conn->pending_scores;
    if (conn->fd >= 0) MaybeFinishClose(conn);
    pendings_[i] = std::move(pendings_.back());
    pendings_.pop_back();
  }
}

int ReactorServer::NextTimeoutMs() const {
  if (options_.idle_timeout_ms <= 0 || conns_.empty()) return -1;
  const auto now = std::chrono::steady_clock::now();
  int64_t nearest = options_.idle_timeout_ms;
  for (const auto& [fd, conn] : conns_) {
    const int64_t idle_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now - conn->last_activity)
            .count();
    nearest = std::min(nearest, options_.idle_timeout_ms - idle_ms);
  }
  return static_cast<int>(std::max<int64_t>(nearest, 0));
}

void ReactorServer::CloseIdleConns() {
  if (options_.idle_timeout_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<Conn>> idle;
  for (const auto& [fd, conn] : conns_) {
    // In-flight scoring counts as activity even if the service is slow.
    if (conn->pending_scores > 0) continue;
    const int64_t idle_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now - conn->last_activity)
            .count();
    if (idle_ms >= options_.idle_timeout_ms) idle.push_back(conn);
  }
  for (auto& conn : idle) {
    idle_closed_.fetch_add(1, std::memory_order_relaxed);
    Teardown(conn);
  }
}

void ReactorServer::MaybeFinishClose(const std::shared_ptr<Conn>& conn) {
  if (conn->closing && conn->slots.empty() && conn->pending_scores == 0 &&
      conn->wpos == conn->wbuf.size()) {
    Teardown(conn);
  }
}

void ReactorServer::Teardown(const std::shared_ptr<Conn>& conn) {
  if (conn->fd < 0) return;
  poller_->Remove(conn->fd);
  conns_.erase(conn->fd);
  CloseConnection(conn->fd);
  conn->fd = -1;
  // Parked score requests pointing here stay in pendings_ until their
  // futures resolve (Submit's borrow), then find fd == -1 and drop their
  // response.
}

void ReactorServer::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  shutting_down_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) WakeLoop();
  if (serve_thread_.joinable()) serve_thread_.join();
  // Serve() on a caller thread: wait for the loop to actually exit before
  // tearing down the poller and wake fds it is using.
  while (loop_running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  listener_.Close();
  if (wake_read_fd_ >= 0) {
    CloseFd(wake_read_fd_);
    if (wake_write_fd_ != wake_read_fd_) CloseFd(wake_write_fd_);
    wake_read_fd_ = -1;
    wake_write_fd_ = -1;
  }
  poller_.reset();
}

WireServerCounters ReactorServer::WireCounters() const {
  WireServerCounters counters;
  counters.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  counters.frames_served = frames_served_.load(std::memory_order_relaxed);
  counters.protocol_errors =
      protocol_errors_.load(std::memory_order_relaxed);
  counters.accept_failures =
      accept_failures_.load(std::memory_order_relaxed);
  return counters;
}

ReactorCounters ReactorServer::stats() const {
  ReactorCounters counters;
  counters.wire = WireCounters();
  counters.backpressure_pauses =
      backpressure_pauses_.load(std::memory_order_relaxed);
  counters.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  counters.pipelined_frames =
      pipelined_frames_.load(std::memory_order_relaxed);
  return counters;
}

}  // namespace wmp::net
