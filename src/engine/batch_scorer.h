#ifndef WMP_ENGINE_BATCH_SCORER_H_
#define WMP_ENGINE_BATCH_SCORER_H_

/// \file batch_scorer.h
/// Batched, parallel inference sessions over a trained LearnedWMP model —
/// the serving-side entry point the per-query pipeline lacked.
///
/// A `BatchScorer` wraps a `core::LearnedWmpModel` and scores whole eval
/// sets in one pass: queries are featurized into contiguous matrices,
/// template-assigned (`TemplateModel::AssignBatch`), histogrammed
/// (`core::BuildHistogramMatrix`), and regressed (`ml::Regressor::Predict`)
/// with row blocks distributed over the shared worker pool
/// (util/parallel.h). Predictions agree with the scalar
/// `PredictWorkload` loop to within 1e-9 per workload.
///
/// Threading model
///  * `ScoreWorkloads` is reentrant: the model is read const and lock-free,
///    per-call statistics are returned by value in the `BatchScoreResult`,
///    and the legacy last-call `stats()` snapshot is mutex-guarded — so one
///    scorer may be shared across threads (the ScoringService shares one
///    per shard).
///  * `BatchScorerOptions::num_threads` bounds the workers used for this
///    session's calls via a thread-local override (util::ScopedParallelism)
///    installed for the duration of each call — concurrent sessions on
///    different threads cannot race each other's budgets.
///  * `BatchScorerOptions::cache` (optional, borrowed) short-circuits the
///    featurize/assign/histogram front half for workloads whose
///    fingerprint is cached; the regressor sees bit-identical histogram
///    rows, so hit-path predictions are bitwise equal to cold-path ones.
///    The cache is itself thread-safe and may be shared across scorers
///    serving the SAME model.
///
/// This is the layer the serving work builds on: engine::ScoringService
/// micro-batches concurrent client requests into ScoreWorkloads calls,
/// one scorer per model shard (see scoring_service.h).

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/learned_wmp.h"
#include "core/workload.h"

namespace wmp::engine {

class HistogramCache;

/// Session configuration for a BatchScorer.
struct BatchScorerOptions {
  /// Worker threads for this session's calls; 0 = library default (all
  /// hardware threads, or whatever util::SetDefaultParallelism chose).
  int num_threads = 0;
  /// Optional histogram cache (borrowed; must outlive the scorer). When
  /// set, ScoreWorkloads skips featurize/assign for fingerprint hits and
  /// inserts every freshly-binned histogram. Share one cache only among
  /// scorers over the same model.
  HistogramCache* cache = nullptr;
};

/// Timing and throughput of one ScoreWorkloads call.
struct BatchScorerStats {
  size_t num_workloads = 0;
  size_t num_queries = 0;
  double elapsed_ms = 0.0;
  double queries_per_sec = 0.0;
  double workloads_per_sec = 0.0;
  /// Histogram-cache outcome of this call (both 0 when no cache attached).
  size_t cache_hits = 0;
  size_t cache_misses = 0;
};

/// What one scoring call produced: per-workload predictions (MB), in input
/// order, plus that call's own stats — returned by value so concurrent
/// callers never observe each other's numbers.
struct BatchScoreResult {
  std::vector<double> predictions;
  BatchScorerStats stats;
};

/// \brief A scoring session over one trained model.
class BatchScorer {
 public:
  /// Borrows `model`; it must outlive the scorer and already be trained.
  explicit BatchScorer(const core::LearnedWmpModel* model,
                       BatchScorerOptions options = {});

  /// Loads a persisted model (LearnedWmpModel::SaveToFile) and owns it.
  static Result<BatchScorer> FromFile(const std::string& path,
                                      BatchScorerOptions options = {});

  /// Predicts the memory demand (MB) of every workload in one batched
  /// pass; one prediction per entry of `batches`, in order. Reentrant —
  /// stats come back by value (and are also mirrored into the last-call
  /// stats() snapshot).
  Result<BatchScoreResult> ScoreWorkloads(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<core::WorkloadBatch>& batches) const;

  /// Convenience: chops `[0, records.size())` into consecutive workloads of
  /// `batch_size` queries (the final partial workload included) and scores
  /// them all. Label fields of the implied batches are unset.
  Result<BatchScoreResult> ScoreLog(
      const std::vector<workloads::QueryRecord>& records, int batch_size) const;

  const core::LearnedWmpModel& model() const { return *model_; }
  /// Last-call stats snapshot, kept for existing single-threaded callers;
  /// concurrent callers should read the returned BatchScoreResult::stats.
  BatchScorerStats stats() const;
  const BatchScorerOptions& options() const { return options_; }

 private:
  BatchScorer(std::unique_ptr<core::LearnedWmpModel> owned,
              BatchScorerOptions options);

  // Cache-aware front half: histogram rows from the cache where
  // fingerprints hit, BinWorkloadsInto for the misses.
  Result<std::vector<double>> ScoreWithCache(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<core::WorkloadBatch>& batches,
      BatchScorerStats* stats) const;

  std::unique_ptr<core::LearnedWmpModel> owned_;  // set iff FromFile
  const core::LearnedWmpModel* model_ = nullptr;
  BatchScorerOptions options_;
  // Heap-held so the scorer stays movable (FromFile returns by value).
  mutable std::unique_ptr<std::mutex> stats_mutex_;
  mutable BatchScorerStats stats_;
};

/// Consecutive (unshuffled, unlabeled) workloads of `batch_size` over
/// `num_queries` queries; the final partial workload is kept. The batching
/// used by ScoreLog and the serving benches.
std::vector<core::WorkloadBatch> MakeConsecutiveBatches(size_t num_queries,
                                                        int batch_size);

}  // namespace wmp::engine

#endif  // WMP_ENGINE_BATCH_SCORER_H_
