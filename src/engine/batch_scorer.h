#ifndef WMP_ENGINE_BATCH_SCORER_H_
#define WMP_ENGINE_BATCH_SCORER_H_

/// \file batch_scorer.h
/// Batched, parallel inference sessions over a trained LearnedWMP model —
/// the serving-side entry point the per-query pipeline lacked.
///
/// A `BatchScorer` wraps a `core::LearnedWmpModel` and scores whole eval
/// sets in one pass: queries are featurized into contiguous matrices,
/// template-assigned (`TemplateModel::AssignBatch`), histogrammed
/// (`core::BuildHistogramMatrix`), and regressed (`ml::Regressor::Predict`)
/// with row blocks distributed over the shared worker pool
/// (util/parallel.h). Predictions agree with the scalar
/// `PredictWorkload` loop to within 1e-9 per workload.
///
/// Threading model
///  * The scorer itself is cheap: it borrows (or owns) the model and keeps
///    only per-call statistics. `ScoreWorkloads` is reentrant with respect
///    to the model (const, lock-free) but mutates the scorer's stats, so
///    share a model across scorers, not one scorer across threads.
///  * `BatchScorerOptions::num_threads` bounds the workers used for this
///    session's calls via a thread-local override (util::ScopedParallelism)
///    installed for the duration of each call — concurrent sessions on
///    different threads cannot race each other's budgets.
///
/// This is the layer later serving work builds on (async admission,
/// sharded scoring, histogram cache reuse — see ROADMAP "Open items").

#include <memory>
#include <string>
#include <vector>

#include "core/learned_wmp.h"
#include "core/workload.h"

namespace wmp::engine {

/// Session configuration for a BatchScorer.
struct BatchScorerOptions {
  /// Worker threads for this session's calls; 0 = library default (all
  /// hardware threads, or whatever util::SetDefaultParallelism chose).
  int num_threads = 0;
};

/// Timing and throughput of the most recent ScoreWorkloads call.
struct BatchScorerStats {
  size_t num_workloads = 0;
  size_t num_queries = 0;
  double elapsed_ms = 0.0;
  double queries_per_sec = 0.0;
  double workloads_per_sec = 0.0;
};

/// \brief A scoring session over one trained model.
class BatchScorer {
 public:
  /// Borrows `model`; it must outlive the scorer and already be trained.
  explicit BatchScorer(const core::LearnedWmpModel* model,
                       BatchScorerOptions options = {});

  /// Loads a persisted model (LearnedWmpModel::SaveToFile) and owns it.
  static Result<BatchScorer> FromFile(const std::string& path,
                                      BatchScorerOptions options = {});

  /// Predicts the memory demand (MB) of every workload in one batched pass;
  /// one output per entry of `batches`, in order. Updates stats().
  Result<std::vector<double>> ScoreWorkloads(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<core::WorkloadBatch>& batches);

  /// Convenience: chops `[0, records.size())` into consecutive workloads of
  /// `batch_size` queries (the final partial workload included) and scores
  /// them all. Label fields of the implied batches are unset.
  Result<std::vector<double>> ScoreLog(
      const std::vector<workloads::QueryRecord>& records, int batch_size);

  const core::LearnedWmpModel& model() const { return *model_; }
  const BatchScorerStats& stats() const { return stats_; }
  const BatchScorerOptions& options() const { return options_; }

 private:
  BatchScorer(std::unique_ptr<core::LearnedWmpModel> owned,
              BatchScorerOptions options);

  std::unique_ptr<core::LearnedWmpModel> owned_;  // set iff FromFile
  const core::LearnedWmpModel* model_ = nullptr;
  BatchScorerOptions options_;
  BatchScorerStats stats_;
};

/// Consecutive (unshuffled, unlabeled) workloads of `batch_size` over
/// `num_queries` queries; the final partial workload is kept. The batching
/// used by ScoreLog and the serving benches.
std::vector<core::WorkloadBatch> MakeConsecutiveBatches(size_t num_queries,
                                                        int batch_size);

}  // namespace wmp::engine

#endif  // WMP_ENGINE_BATCH_SCORER_H_
