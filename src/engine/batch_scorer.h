#ifndef WMP_ENGINE_BATCH_SCORER_H_
#define WMP_ENGINE_BATCH_SCORER_H_

/// \file batch_scorer.h
/// Batched, parallel inference sessions over a trained LearnedWMP model —
/// the serving-side entry point the per-query pipeline lacked.
///
/// A `BatchScorer` wraps a `core::LearnedWmpModel` and scores whole eval
/// sets in one pass: queries are featurized into contiguous matrices,
/// template-assigned (`TemplateModel::AssignBatch`), histogrammed
/// (`core::BuildHistogramMatrix`), and regressed (`ml::Regressor::Predict`)
/// with row blocks distributed over the shared worker pool
/// (util/parallel.h). Predictions agree with the scalar
/// `PredictWorkload` loop to within 1e-9 per workload.
///
/// Threading model
///  * `ScoreWorkloads` is reentrant: the model is read const and lock-free,
///    per-call statistics are returned by value in the `BatchScoreResult`,
///    and the legacy last-call `stats()` snapshot is mutex-guarded — so one
///    scorer may be shared across threads (the ScoringService shares one
///    per shard).
///  * **RCU model hot-swap.** The scorer holds its model as a
///    `std::shared_ptr<const LearnedWmpModel>` snapshot paired with a
///    monotonically increasing *epoch*. Each ScoreWorkloads call pins the
///    (model, epoch) pair once at entry and uses it throughout — the RCU
///    read side. `PublishModel` swaps in a retrained model and bumps the
///    epoch — the write side; calls already in flight finish on the old
///    snapshot (kept alive by their pinned shared_ptr), later calls see
///    the new one, and nothing blocks on anything. The retired model frees
///    when its last in-flight call drops the reference.
///  * `BatchScorerOptions::num_threads` bounds the workers used for this
///    session's calls via a thread-local override (util::ScopedParallelism)
///    installed for the duration of each call — concurrent sessions on
///    different threads cannot race each other's budgets.
///  * **Two-level caching.** `BatchScorerOptions::cache` (borrowed)
///    short-circuits whole recurring workloads by fingerprint;
///    `BatchScorerOptions::template_cache` (borrowed) memoizes per-query
///    template ids so *novel combinations of known queries* skip
///    featurize/assign per member query. Either, both, or neither may be
///    set; the regressor sees bit-identical histogram rows on every hit
///    path, so hit predictions are bitwise equal to cold ones. Both caches
///    stamp entries with the scoring call's model epoch, so a hot-swap
///    implicitly invalidates them — stale entries can never serve the new
///    model (see histogram_cache.h / template_cache.h). Share caches only
///    among scorers whose models are published in lockstep.
///
/// This is the layer the serving work builds on: engine::ScoringService
/// micro-batches concurrent client requests into ScoreWorkloads calls,
/// one scorer per model shard (see scoring_service.h).

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/learned_wmp.h"
#include "core/workload.h"

namespace wmp::engine {

class HistogramCache;
class TemplateIdCache;

/// Session configuration for a BatchScorer.
struct BatchScorerOptions {
  /// Worker threads for this session's calls; 0 = library default (all
  /// hardware threads, or whatever util::SetDefaultParallelism chose).
  int num_threads = 0;
  /// Optional histogram cache (borrowed; must outlive the scorer). When
  /// set, ScoreWorkloads skips featurize/assign for whole-workload
  /// fingerprint hits and inserts every freshly-binned histogram.
  HistogramCache* cache = nullptr;
  /// Optional per-query template-id cache (borrowed; must outlive the
  /// scorer). When set, member queries with memoized template ids skip
  /// featurize/assign individually — the win on novel combinations of
  /// known queries, where the histogram cache cannot hit.
  TemplateIdCache* template_cache = nullptr;
};

/// Timing and throughput of one ScoreWorkloads call.
struct BatchScorerStats {
  size_t num_workloads = 0;
  size_t num_queries = 0;
  double elapsed_ms = 0.0;
  double queries_per_sec = 0.0;
  double workloads_per_sec = 0.0;
  /// Histogram-cache (level 1, per workload) outcome of this call (both 0
  /// when no cache attached).
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  /// Template-id-cache (level 2, per query) outcome of this call. Counts
  /// only queries that reached the binning path — members of workloads the
  /// histogram cache already served never probe level 2.
  size_t template_cache_hits = 0;
  size_t template_cache_misses = 0;
};

/// What one scoring call produced: per-workload predictions (MB), in input
/// order, plus that call's own stats — returned by value so concurrent
/// callers never observe each other's numbers.
struct BatchScoreResult {
  std::vector<double> predictions;
  BatchScorerStats stats;
};

/// \brief A scoring session over one trained (hot-swappable) model.
class BatchScorer {
 public:
  /// Borrows `model`; it must outlive the scorer (or its replacement by
  /// PublishModel) and already be trained.
  explicit BatchScorer(const core::LearnedWmpModel* model,
                       BatchScorerOptions options = {});

  /// Shares ownership of `model` — the publishable form: PublishModel can
  /// later retire it safely under live calls.
  explicit BatchScorer(std::shared_ptr<const core::LearnedWmpModel> model,
                       BatchScorerOptions options = {});

  /// Loads a persisted model (LearnedWmpModel::SaveToFile) and owns it.
  static Result<BatchScorer> FromFile(const std::string& path,
                                      BatchScorerOptions options = {});

  /// Predicts the memory demand (MB) of every workload in one batched
  /// pass; one prediction per entry of `batches`, in order. Reentrant —
  /// stats come back by value (and are also mirrored into the last-call
  /// stats() snapshot).
  Result<BatchScoreResult> ScoreWorkloads(
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<core::WorkloadBatch>& batches) const;

  /// Convenience: chops `[0, records.size())` into consecutive workloads of
  /// `batch_size` queries (the final partial workload included) and scores
  /// them all. Label fields of the implied batches are unset.
  Result<BatchScoreResult> ScoreLog(
      const std::vector<workloads::QueryRecord>& records, int batch_size) const;

  /// RCU write side: atomically installs `model` (non-null, trained) as
  /// the snapshot for all future calls and bumps the model epoch, which
  /// implicitly invalidates both attached caches' existing entries. Safe
  /// from any thread, including while ScoreWorkloads calls are in flight —
  /// those finish on the snapshot they pinned at entry.
  void PublishModel(std::shared_ptr<const core::LearnedWmpModel> model);

  /// Current model snapshot (null only if constructed with one). Holding
  /// the returned shared_ptr keeps the snapshot alive across hot-swaps.
  std::shared_ptr<const core::LearnedWmpModel> model_snapshot() const;
  /// Epoch of the current snapshot; bumped by each PublishModel.
  uint64_t model_epoch() const;
  /// Legacy reference accessor: valid until the next PublishModel retires
  /// the snapshot. Prefer model_snapshot() anywhere a swap can happen.
  const core::LearnedWmpModel& model() const { return *model_snapshot(); }

  /// Last-call stats snapshot, kept for existing single-threaded callers;
  /// concurrent callers should read the returned BatchScoreResult::stats.
  BatchScorerStats stats() const;
  const BatchScorerOptions& options() const { return options_; }

 private:
  // The (model, epoch) pair a scoring call pins once at entry.
  struct Snapshot {
    std::shared_ptr<const core::LearnedWmpModel> model;
    uint64_t epoch = 0;
  };

  Snapshot PinSnapshot() const;

  // Cache-aware front half: histogram rows from the caches where
  // fingerprints hit, BinWorkloadsInto (with the per-query memo) for the
  // rest.
  Result<std::vector<double>> ScoreWithCache(
      const Snapshot& snap,
      const std::vector<workloads::QueryRecord>& records,
      const std::vector<core::WorkloadBatch>& batches,
      BatchScorerStats* stats) const;

  BatchScorerOptions options_;
  // Heap-held so the scorer stays movable (FromFile returns by value).
  mutable std::unique_ptr<std::mutex> model_mutex_;  // guards model_ + epoch_
  std::shared_ptr<const core::LearnedWmpModel> model_;
  uint64_t epoch_ = 0;
  mutable std::unique_ptr<std::mutex> stats_mutex_;
  mutable BatchScorerStats stats_;
};

/// Consecutive (unshuffled, unlabeled) workloads of `batch_size` over
/// `num_queries` queries; the final partial workload is kept. The batching
/// used by ScoreLog and the serving benches.
std::vector<core::WorkloadBatch> MakeConsecutiveBatches(size_t num_queries,
                                                        int batch_size);

}  // namespace wmp::engine

#endif  // WMP_ENGINE_BATCH_SCORER_H_
