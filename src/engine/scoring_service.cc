#include "engine/scoring_service.h"

#include <algorithm>
#include <utility>

#include "ml/compiled_tree.h"
#include "util/hash.h"

namespace wmp::engine {

namespace {

void AtomicMax(std::atomic<uint64_t>* target, uint64_t value) {
  uint64_t current = target->load(std::memory_order_relaxed);
  while (current < value &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

ScoringService::ScoringService(
    std::vector<std::shared_ptr<const core::LearnedWmpModel>> models,
    ScoringServiceOptions options)
    : options_(options) {
  if (models.empty()) models.push_back(nullptr);  // degenerate, errors at use
  options_.max_batch = std::max<size_t>(options_.max_batch, 1);
  options_.max_delay_us = std::max<int64_t>(options_.max_delay_us, 0);
  shards_.reserve(models.size());
  for (std::shared_ptr<const core::LearnedWmpModel>& model : models) {
    auto shard = std::make_unique<Shard>();
    if (options_.cache_capacity > 0) {
      HistogramCacheOptions copt;
      copt.capacity = options_.cache_capacity;
      copt.num_shards = options_.cache_shards;
      shard->cache = std::make_unique<HistogramCache>(copt);
    }
    if (options_.template_cache_capacity > 0) {
      TemplateIdCacheOptions topt;
      topt.capacity = options_.template_cache_capacity;
      topt.num_shards = options_.cache_shards;
      shard->template_cache = std::make_unique<TemplateIdCache>(topt);
    }
    BatchScorerOptions sopt;
    sopt.num_threads = options_.num_threads;
    sopt.cache = shard->cache.get();
    sopt.template_cache = shard->template_cache.get();
    shard->scorer = std::make_unique<BatchScorer>(std::move(model), sopt);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    shard->dispatcher =
        std::thread([this, s = shard.get()] { DispatcherLoop(s); });
  }
}

namespace {

std::vector<std::shared_ptr<const core::LearnedWmpModel>> WrapBorrowed(
    const std::vector<const core::LearnedWmpModel*>& models) {
  std::vector<std::shared_ptr<const core::LearnedWmpModel>> shared;
  shared.reserve(models.size());
  for (const core::LearnedWmpModel* model : models) {
    // Non-owning: empty control block, never deletes the borrowed model.
    shared.emplace_back(std::shared_ptr<const void>(), model);
  }
  return shared;
}

}  // namespace

ScoringService::ScoringService(
    std::vector<const core::LearnedWmpModel*> models,
    ScoringServiceOptions options)
    : ScoringService(WrapBorrowed(models), options) {}

ScoringService::ScoringService(
    std::initializer_list<const core::LearnedWmpModel*> models,
    ScoringServiceOptions options)
    : ScoringService(std::vector<const core::LearnedWmpModel*>(models),
                     options) {}

ScoringService::~ScoringService() { Stop(); }

size_t ScoringService::ShardForTenant(std::string_view tenant) const {
  return static_cast<size_t>(util::HashString(tenant) % shards_.size());
}

std::future<Result<double>> ScoringService::Submit(
    std::string_view tenant,
    const std::vector<workloads::QueryRecord>& records,
    std::vector<uint32_t> query_indices) {
  return SubmitToShard(ShardForTenant(tenant), records,
                       std::move(query_indices));
}

std::future<Result<double>> ScoringService::SubmitToShard(
    size_t shard_index, const std::vector<workloads::QueryRecord>& records,
    std::vector<uint32_t> query_indices) {
  auto request = std::make_unique<Request>();
  request->records = &records;
  request->batch.query_indices = std::move(query_indices);
  request->submit_time = std::chrono::steady_clock::now();
  std::future<Result<double>> future = request->promise.get_future();
  if (shard_index >= shards_.size()) {
    request->promise.set_value(
        Status::InvalidArgument("shard index out of range"));
    return future;
  }
  // Validate at the trust boundary: downstream featurization indexes the
  // log unchecked (its callers own their batches), and one bad client
  // request must not take down the dispatcher.
  for (uint32_t qi : request->batch.query_indices) {
    if (qi >= records.size()) {
      request->promise.set_value(Status::OutOfRange(
          "workload query index outside the submitted log"));
      return future;
    }
  }
  Shard& shard = *shards_[shard_index];
  // Count before Push: the dispatcher may complete the request the moment
  // it lands, and stats() must never show completed > submitted. The
  // inflight increment must also precede Push so the adaptive controller
  // can never observe a queued request it does not count.
  submitted_.fetch_add(1, std::memory_order_relaxed);
  shard.inflight.fetch_add(1, std::memory_order_release);
  if (!shard.queue.Push(std::move(request))) {
    // Queue closed: the service is stopping. The rejected request (and its
    // promise) is gone, so hand back a fresh, already-resolved future.
    submitted_.fetch_sub(1, std::memory_order_relaxed);
    shard.inflight.fetch_sub(1, std::memory_order_release);
    std::promise<Result<double>> dead;
    dead.set_value(Status::FailedPrecondition("scoring service stopped"));
    return dead.get_future();
  }
  AtomicMax(&max_queue_depth_, shard.queue.size());
  return future;
}

Status ScoringService::PublishModel(
    size_t shard, std::shared_ptr<const core::LearnedWmpModel> model) {
  if (shard >= shards_.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  if (model == nullptr) {
    return Status::InvalidArgument("cannot publish a null model");
  }
  shards_[shard]->scorer->PublishModel(std::move(model));
  models_published_.fetch_add(1, std::memory_order_relaxed);
  StartWarm(shards_[shard].get());
  return Status::OK();
}

Result<uint64_t> ScoringService::PublishAll(
    std::shared_ptr<const core::LearnedWmpModel> model,
    ModelRegistry* registry, const std::string& name) {
  // All-or-nothing = validate everything that can fail BEFORE touching any
  // shard; the per-shard swap itself is an infallible pointer exchange.
  if (model == nullptr) {
    return Status::InvalidArgument("cannot publish a null model");
  }
  if (model->templates().num_templates() <= 0) {
    return Status::FailedPrecondition(
        "cannot publish an untrained model (no templates)");
  }
  if (registry != nullptr && name.empty()) {
    return Status::InvalidArgument(
        "registry recording needs a model name");
  }
  // One rollout at a time: concurrent PublishAll/RollbackAll calls must
  // not interleave their per-shard swaps (shards could settle on
  // different artifacts) or their registry updates (the registry's
  // current entry could diverge from what the shards serve).
  std::lock_guard<std::mutex> lock(publish_all_mutex_);
  for (auto& shard : shards_) {
    shard->scorer->PublishModel(model);
  }
  models_published_.fetch_add(shards_.size(), std::memory_order_relaxed);
  uint64_t epoch = 0;
  if (registry != nullptr) {
    WMP_ASSIGN_OR_RETURN(epoch, registry->Record(name, model));
  }
  for (auto& shard : shards_) StartWarm(shard.get());
  return epoch;
}

Result<uint64_t> ScoringService::RollbackAll(ModelRegistry* registry,
                                             const std::string& name) {
  if (registry == nullptr) {
    return Status::InvalidArgument("rollback needs a registry");
  }
  // Same rollout mutex as PublishAll: the registry pop and the shard
  // swaps form one atomic rollout, so a concurrent publish either
  // happens wholly before (and is what gets rolled back) or wholly
  // after (and overrides the rollback) — never interleaved.
  std::lock_guard<std::mutex> lock(publish_all_mutex_);
  WMP_ASSIGN_OR_RETURN(RegistryEntry previous, registry->Rollback(name));
  for (auto& shard : shards_) {
    shard->scorer->PublishModel(previous.model);
  }
  models_published_.fetch_add(shards_.size(), std::memory_order_relaxed);
  for (auto& shard : shards_) StartWarm(shard.get());
  return previous.epoch;
}

void ScoringService::SetWarmCorpus(
    const std::vector<workloads::QueryRecord>* records) {
  std::shared_ptr<const WarmCorpus> corpus;
  if (records != nullptr) {
    auto built = std::make_shared<WarmCorpus>();
    built->records = records;
    built->by_fingerprint.reserve(records->size());
    for (size_t i = 0; i < records->size(); ++i) {
      const workloads::QueryRecord& r = (*records)[i];
      const uint64_t fp = r.content_fingerprint != 0
                              ? r.content_fingerprint
                              : workloads::ContentFingerprint(r);
      // First occurrence wins; duplicates share the fingerprint anyway.
      built->by_fingerprint.emplace(fp, static_cast<uint32_t>(i));
    }
    corpus = std::move(built);
  }
  std::lock_guard<std::mutex> lock(warm_corpus_mutex_);
  warm_corpus_ = std::move(corpus);
}

void ScoringService::StartWarm(Shard* shard) {
  if (!options_.warm_on_publish || shard->template_cache == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(warm_corpus_mutex_);
    if (warm_corpus_ == nullptr) return;
  }
  std::lock_guard<std::mutex> lock(shard->warm_mutex);
  // The stopped_ check must happen under warm_mutex: Stop() sets stopped_
  // BEFORE taking each shard's warm_mutex to join its warmer, so either
  // this lock precedes Stop's (and Stop joins the warmer launched here),
  // or it follows it (and the check below sees stopped_ and declines) —
  // a warmer can never outlive Stop() and read a freed warm corpus.
  if (stopped_.load(std::memory_order_relaxed)) return;
  // A previous publish's warmer notices the epoch moved on at its next
  // chunk boundary and exits, so this join is bounded by one warm_batch.
  if (shard->warmer.joinable()) shard->warmer.join();
  shard->warmer = std::thread([this, shard] { WarmShard(shard); });
}

void ScoringService::WarmShard(Shard* shard) {
  std::shared_ptr<const WarmCorpus> corpus;
  {
    std::lock_guard<std::mutex> lock(warm_corpus_mutex_);
    corpus = warm_corpus_;
  }
  if (corpus == nullptr) return;
  const std::shared_ptr<const core::LearnedWmpModel> model =
      shard->scorer->model_snapshot();
  const uint64_t epoch = shard->scorer->model_epoch();
  if (model == nullptr) return;
  // The working set to restore: everything resident right now — mostly
  // entries stamped with the retired epoch, still in the LRU because
  // invalidation is lazy. Keys unknown to the corpus are skipped (their
  // queries will re-learn on first miss as before).
  std::vector<uint64_t> keys;
  std::vector<uint32_t> indices;
  for (uint64_t key : shard->template_cache->ResidentKeys()) {
    auto it = corpus->by_fingerprint.find(key);
    if (it == corpus->by_fingerprint.end()) continue;
    keys.push_back(key);
    indices.push_back(it->second);
  }
  const size_t step = std::max<size_t>(options_.warm_batch, 1);
  uint64_t warmed = 0;
  std::vector<uint32_t> chunk;
  for (size_t begin = 0; begin < keys.size(); begin += step) {
    // Yield to shutdown, and to any newer publish: its own warmer owns the
    // new epoch, and inserting under a stale epoch would only create
    // entries the next probe lazily invalidates.
    if (stopped_.load(std::memory_order_relaxed)) break;
    if (shard->scorer->model_epoch() != epoch) break;
    const size_t end = std::min(begin + step, keys.size());
    chunk.assign(indices.begin() + static_cast<long>(begin),
                 indices.begin() + static_cast<long>(end));
    auto ids = model->AssignTemplateIds(*corpus->records, chunk, nullptr);
    if (!ids.ok()) break;  // corpus no longer featurizable under this model
    shard->template_cache->InsertBatch(keys.data() + begin, ids->data(),
                                       end - begin, epoch);
    warmed += end - begin;
  }
  if (warmed > 0) {
    template_entries_warmed_.fetch_add(warmed, std::memory_order_relaxed);
  }
}

void ScoringService::SetCompletionCallback(std::function<void()> callback) {
  std::shared_ptr<const std::function<void()>> next;
  if (callback) {
    next = std::make_shared<const std::function<void()>>(std::move(callback));
  }
  std::lock_guard<std::mutex> lock(completion_callback_mutex_);
  completion_callback_ = std::move(next);
}

void ScoringService::Fulfill(Shard* shard, Request* request,
                             Result<double> outcome) {
  const auto now = std::chrono::steady_clock::now();
  const uint64_t latency_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          now - request->submit_time)
          .count());
  total_latency_us_.fetch_add(latency_us, std::memory_order_relaxed);
  AtomicMax(&max_latency_us_, latency_us);
  if (outcome.ok()) {
    completed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  request->promise.set_value(std::move(outcome));
  // After set_value: the client may already be submitting its next request
  // on another thread; decrementing last keeps inflight an overcount, and
  // the adaptive controller errs only toward waiting (never flushes while
  // a counted arrival is still due).
  shard->inflight.fetch_sub(1, std::memory_order_release);
}

void ScoringService::Flush(Shard* shard,
                           std::vector<std::unique_ptr<Request>>* requests,
                           FlushReason reason) {
  if (requests->empty()) return;
  flushes_.fetch_add(1, std::memory_order_relaxed);
  switch (reason) {
    case FlushReason::kFull:
      flushes_full_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FlushReason::kAdaptive:
      flushes_adaptive_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FlushReason::kDeadline:
      flushes_deadline_.fetch_add(1, std::memory_order_relaxed);
      break;
    case FlushReason::kDrain:
      flushes_drain_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (shard->scorer->model_snapshot() == nullptr) {
    for (auto& req : *requests) {
      Fulfill(shard, req.get(),
              Status::FailedPrecondition("scoring service has no model"));
    }
    NotifyCompletion();
    return;
  }
  // Group by query-log vector: one ScoreWorkloads call per distinct log in
  // the flush (clients of one deployment share a log, so normally exactly
  // one group — the single micro-batched scoring call per shard and flush).
  std::vector<const std::vector<workloads::QueryRecord>*> logs;
  std::vector<std::vector<std::unique_ptr<Request>>> groups;
  for (auto& req : *requests) {
    size_t g = 0;
    while (g < logs.size() && logs[g] != req->records) ++g;
    if (g == logs.size()) {
      logs.push_back(req->records);
      groups.emplace_back();
    }
    groups[g].push_back(std::move(req));
  }
  for (size_t g = 0; g < groups.size(); ++g) {
    std::vector<core::WorkloadBatch> batches;
    batches.reserve(groups[g].size());
    // Move, don't copy: the requests no longer need their index lists, and
    // the rare rescore path below reads batches[m] (still in scope).
    for (auto& req : groups[g]) batches.push_back(std::move(req->batch));
    auto result = shard->scorer->ScoreWorkloads(*logs[g], batches);
    if (result.ok()) {
      cache_hits_.fetch_add(result->stats.cache_hits,
                            std::memory_order_relaxed);
      cache_misses_.fetch_add(result->stats.cache_misses,
                              std::memory_order_relaxed);
      template_cache_hits_.fetch_add(result->stats.template_cache_hits,
                                     std::memory_order_relaxed);
      template_cache_misses_.fetch_add(result->stats.template_cache_misses,
                                       std::memory_order_relaxed);
      for (size_t m = 0; m < groups[g].size(); ++m) {
        Fulfill(shard, groups[g][m].get(), result->predictions[m]);
      }
    } else {
      // Batch-level failure (e.g. one empty workload fails a
      // variable-length model's whole histogram pass, or the model itself
      // errors): isolate it by rescoring one by one so only the offending
      // futures carry the error. The rescore's cache lookups are NOT
      // counted: they would re-hit histograms the failed attempt just
      // inserted and report a bogus 100% hit rate for a cold flush (and an
      // errored call returns no stats to forward), so failed flushes
      // simply contribute nothing to the cache counters.
      for (size_t m = 0; m < groups[g].size(); ++m) {
        auto one = shard->scorer->ScoreWorkloads(*logs[g], {batches[m]});
        if (one.ok()) {
          Fulfill(shard, groups[g][m].get(), one->predictions.front());
        } else {
          Fulfill(shard, groups[g][m].get(), one.status());
        }
      }
    }
  }
  // One doorbell per flush, after every promise of the flush is set — a
  // parked consumer wakes once and finds the whole batch ready.
  NotifyCompletion();
}

void ScoringService::NotifyCompletion() {
  std::shared_ptr<const std::function<void()>> callback;
  {
    std::lock_guard<std::mutex> lock(completion_callback_mutex_);
    callback = completion_callback_;
  }
  if (callback) (*callback)();
}

void ScoringService::DispatcherLoop(Shard* shard) {
  std::vector<std::unique_ptr<Request>> batch;
  for (;;) {
    batch.clear();
    if (shard->queue.WaitNonEmpty() == util::QueueWait::kClosed) break;
    // Collect until the flush fills, its delay budget runs out, or (the
    // adaptive controller) no further arrival can be pending. The budget
    // starts at first arrival, so an idle service adds no latency to a
    // lone request beyond one max_delay_us window — and with adaptive
    // flushing, not even that.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(options_.max_delay_us);
    shard->queue.PopSome(options_.max_batch, &batch);
    FlushReason reason = FlushReason::kFull;
    while (batch.size() < options_.max_batch) {
      // Every submitted-but-unfulfilled request is already in hand and the
      // queue is empty: closed-loop clients are all blocked on this very
      // flush, so the delay window can only add latency, never batching.
      // (inflight is incremented before Push, so a racing Submit is seen
      // here before its request is even visible in the queue — the check
      // errs only toward waiting.)
      if (options_.adaptive_flush &&
          shard->inflight.load(std::memory_order_acquire) <= batch.size() &&
          shard->queue.size() == 0) {
        reason = FlushReason::kAdaptive;
        break;
      }
      const util::QueueWait wait = shard->queue.WaitNonEmptyUntil(deadline);
      if (wait == util::QueueWait::kTimeout) {
        reason = FlushReason::kDeadline;
        break;
      }
      if (wait == util::QueueWait::kClosed) {
        reason = FlushReason::kDrain;
        break;
      }
      shard->queue.PopSome(options_.max_batch - batch.size(), &batch);
    }
    Flush(shard, &batch, reason);
  }
  // Closed: drain whatever raced in before Close and score it.
  batch.clear();
  while (shard->queue.PopSome(options_.max_batch, &batch) > 0) {
    Flush(shard, &batch, FlushReason::kDrain);
    batch.clear();
  }
}

void ScoringService::Stop() {
  std::lock_guard<std::mutex> lock(stop_mutex_);
  stopped_.store(true, std::memory_order_relaxed);
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (shard->dispatcher.joinable()) shard->dispatcher.join();
  }
  // Background warmers see stopped_ at their next chunk boundary; reap
  // them so no thread outlives the service.
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> warm_lock(shard->warm_mutex);
    if (shard->warmer.joinable()) shard->warmer.join();
  }
}

ServiceStats ScoringService::stats() const {
  ServiceStats st;
  st.submitted = submitted_.load(std::memory_order_relaxed);
  st.completed = completed_.load(std::memory_order_relaxed);
  st.failed = failed_.load(std::memory_order_relaxed);
  st.flushes = flushes_.load(std::memory_order_relaxed);
  st.flushes_full = flushes_full_.load(std::memory_order_relaxed);
  st.flushes_adaptive = flushes_adaptive_.load(std::memory_order_relaxed);
  st.flushes_deadline = flushes_deadline_.load(std::memory_order_relaxed);
  st.flushes_drain = flushes_drain_.load(std::memory_order_relaxed);
  st.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  st.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  st.template_cache_hits =
      template_cache_hits_.load(std::memory_order_relaxed);
  st.template_cache_misses =
      template_cache_misses_.load(std::memory_order_relaxed);
  st.models_published = models_published_.load(std::memory_order_relaxed);
  st.template_entries_warmed =
      template_entries_warmed_.load(std::memory_order_relaxed);
  st.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  st.total_latency_us = total_latency_us_.load(std::memory_order_relaxed);
  st.max_latency_us = max_latency_us_.load(std::memory_order_relaxed);
  uint64_t depth = 0;
  for (const auto& shard : shards_) depth += shard->queue.size();
  st.queue_depth = depth;
  // Kernel identity of the serving path (shard 0 is representative: every
  // shard's model compiles under the same process-wide resolution). 0 =
  // reference walk — no compiled form or compiled routing turned off.
  if (!shards_.empty()) {
    if (const auto model = shards_[0]->scorer->model_snapshot()) {
      if (model->compiled_inference() && model->compiled() != nullptr) {
        st.traverse_kernel_id = model->compiled()->kernel_id();
      }
      // Cold-path pruning counters live in the template model's shared
      // block, so shard 0's snapshot sees every copy's assignments.
      const auto assign = model->templates().assign_stats();
      st.assign_rows = assign.rows;
      st.assign_bound_skips = assign.bound_skips;
      st.assign_early_exits = assign.early_exits;
      st.assign_full_distances = assign.full_distances;
    }
  }
  return st;
}

}  // namespace wmp::engine
