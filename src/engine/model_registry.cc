#include "engine/model_registry.h"

#include <algorithm>
#include <utility>

namespace wmp::engine {

ModelRegistry::ModelRegistry(ModelRegistryOptions options)
    : options_(options) {
  options_.keep_last = std::max<size_t>(options_.keep_last, 2);
}

Result<uint64_t> ModelRegistry::Record(
    const std::string& name,
    std::shared_ptr<const core::LearnedWmpModel> model) {
  if (name.empty()) {
    return Status::InvalidArgument("registry model name must not be empty");
  }
  if (model == nullptr) {
    return Status::InvalidArgument("cannot record a null model");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<RegistryEntry>& history = histories_[name];
  RegistryEntry entry;
  entry.epoch = next_epoch_++;
  entry.model = std::move(model);
  history.push_back(std::move(entry));
  if (history.size() > options_.keep_last) {
    history.erase(history.begin(),
                  history.begin() +
                      static_cast<long>(history.size() - options_.keep_last));
  }
  return history.back().epoch;
}

Result<RegistryEntry> ModelRegistry::Rollback(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histories_.find(name);
  if (it == histories_.end()) {
    return Status::NotFound("unknown model name: " + name);
  }
  std::vector<RegistryEntry>& history = it->second;
  if (history.size() < 2) {
    return Status::FailedPrecondition(
        "no earlier epoch retained for model: " + name);
  }
  history.pop_back();
  return history.back();
}

Result<RegistryEntry> ModelRegistry::Current(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histories_.find(name);
  if (it == histories_.end() || it->second.empty()) {
    return Status::NotFound("unknown model name: " + name);
  }
  return it->second.back();
}

size_t ModelRegistry::NumEpochs(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histories_.find(name);
  return it == histories_.end() ? 0 : it->second.size();
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(histories_.size());
  for (const auto& [name, history] : histories_) names.push_back(name);
  return names;
}

}  // namespace wmp::engine
