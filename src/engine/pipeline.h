#ifndef WMP_ENGINE_PIPELINE_H_
#define WMP_ENGINE_PIPELINE_H_

/// \file pipeline.h
/// Pipeline-aware peak-memory analysis.
///
/// A plan executes as a sequence of pipelines separated by blocking
/// operators (SORT, hash GROUP BY, TEMP, and the build side of HSJOIN).
/// Peak working memory is NOT the sum of all operator memories: a sort's
/// buffer and the hash table it feeds exist at different times, while a
/// probe-side scan and the resident hash table exist at the same time.
///
/// The recursion computes, per subtree:
///  * `active`  — bytes held while the subtree is streaming rows up,
///  * `peak`    — maximum bytes alive at any instant of the subtree's
///                 entire execution (including its internal build phases).
///
/// Rules (children already analyzed):
///  * streaming unary op:  active = own + child.active,
///                         peak = max(child.peak + own, active)
///  * streaming binary op (NLJOIN/MSJOIN — both inputs open):
///        active = own + c0.active + c1.active
///        peak   = own + max(c0.peak + c1.active, c1.peak + c0.active)
///  * SORT/TEMP/hash-GRPBY (blocking):
///        peak   = max(child.peak + build, resident)
///        active = resident              (child freed before producing)
///  * HSJOIN (build = child 1, probe = child 0):
///        peak   = max(c1.peak + build, resident + c0.peak + own_buffers)
///        active = resident + c0.active

#include "engine/memory_model.h"
#include "plan/plan_node.h"

namespace wmp::engine {

/// \brief Result of analyzing one subtree.
struct MemoryProfile {
  double active_bytes = 0.0;
  double peak_bytes = 0.0;
  int spill_count = 0;  ///< operators that exceeded their heap
};

/// \brief Computes the peak-memory profile of `root` under `config`,
/// reading the chosen cardinality track.
MemoryProfile AnalyzePlanMemory(const plan::PlanNode& root,
                                const MemoryModelConfig& config,
                                CardTrack track);

}  // namespace wmp::engine

#endif  // WMP_ENGINE_PIPELINE_H_
