#ifndef WMP_ENGINE_HISTOGRAM_CACHE_H_
#define WMP_ENGINE_HISTOGRAM_CACHE_H_

/// \file histogram_cache.h
/// Sharded LRU cache of workload histograms, keyed by
/// `core::WorkloadFingerprint`.
///
/// Steady-state workloads (OLTP, Sibyl-style template-repetitive streams)
/// re-submit the same query sets; their histograms are identical, so the
/// featurize + template-assign front half of scoring is pure recomputation.
/// This cache lets the serving path skip it: on a hit the stored bins are
/// copied into the batch's histogram matrix bit-for-bit, which keeps
/// hit-path predictions bitwise identical to cold-path ones (the regressor
/// sees the exact same doubles).
///
/// Thread-safety: fully thread-safe. Entries are hashed across independent
/// shards, each with its own mutex + LRU list, so concurrent dispatchers
/// (one per model shard) and any monitoring thread contend only when they
/// collide on a shard. Stats counters are lock-free atomics.
///
/// Keys are 64-bit content fingerprints; a collision returns the colliding
/// entry's histogram (the standard content-addressed-cache tradeoff,
/// ~2^-32 per pair). Use one cache per model: histograms are only
/// meaningful against the template model that produced them.
///
/// Model versioning: every entry is stamped with the caller's model
/// *epoch* (engine::BatchScorer bumps it on each PublishModel hot-swap).
/// A lookup hits only when the stored epoch matches the caller's, so
/// entries computed under a retired model can never serve the new model's
/// predictions. The comparison is directional: a probe newer than the
/// entry lazily erases it (the model it served is retired), while a probe
/// *older* than the entry — an in-flight flush still pinned to a retired
/// snapshot racing a publish — just misses, and a stale writer's insert
/// is dropped rather than clobbering what the new model already cached.

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace wmp::engine {

struct HistogramCacheOptions {
  /// Maximum resident entries across all shards; 0 disables insertion
  /// (every lookup misses).
  size_t capacity = 4096;
  /// Lock shards (rounded up to a power of two, >= 1).
  size_t num_shards = 8;
};

/// Monotonic counters; `size` is the current resident entry count.
struct HistogramCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Entries dropped because their epoch no longer matched a probe's —
  /// the model was hot-swapped under them.
  uint64_t invalidations = 0;
  size_t size = 0;
};

/// \brief Thread-safe sharded LRU map: fingerprint -> histogram bins.
class HistogramCache {
 public:
  explicit HistogramCache(HistogramCacheOptions options = {});

  /// On hit, copies the cached histogram (exactly `len` bins) into `out`
  /// and returns true. A stored entry whose length differs from `len` is
  /// treated as a miss (defensive: one cache, one model — but a mismatch
  /// must never smear a wrong-width row into the batch matrix). An entry
  /// stamped with a different model epoch is a miss too; older-epoch
  /// entries are erased, newer ones are left for their own epoch's
  /// probes.
  bool Lookup(uint64_t key, double* out, size_t len, uint64_t epoch = 0);

  /// Inserts (or refreshes) `key -> histogram[0..len)` stamped with the
  /// caller's model `epoch`, evicting the shard's least-recently-used
  /// entry when over budget.
  void Insert(uint64_t key, const double* histogram, size_t len,
              uint64_t epoch = 0);

  /// Drops every entry (stats counters keep accumulating).
  void Clear();

  HistogramCacheStats stats() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    uint64_t key;
    uint64_t epoch;
    std::vector<double> bins;
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
  };

  Shard& ShardFor(uint64_t key) {
    // The key is already well-mixed (splitmix64 finalizer); fold the high
    // bits in so shard choice and map bucketing use different bit ranges.
    return shards_[(key ^ (key >> 32)) & shard_mask_];
  }

  size_t capacity_ = 0;
  size_t per_shard_capacity_ = 0;
  size_t shard_mask_ = 0;
  std::unique_ptr<Shard[]> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<size_t> size_{0};
};

}  // namespace wmp::engine

#endif  // WMP_ENGINE_HISTOGRAM_CACHE_H_
