#include "engine/memory_model.h"

#include <algorithm>
#include <cmath>

namespace wmp::engine {

double NodeInputCard(const plan::PlanNode& node, CardTrack track) {
  if (track == CardTrack::kTrue && node.true_input_card >= 0.0) {
    return node.true_input_card;
  }
  return node.input_card;
}

double NodeOutputCard(const plan::PlanNode& node, CardTrack track) {
  if (track == CardTrack::kTrue && node.true_output_card >= 0.0) {
    return node.true_output_card;
  }
  return node.output_card;
}

OperatorMemory ComputeOperatorMemory(const plan::PlanNode& node,
                                     const MemoryModelConfig& config,
                                     CardTrack track) {
  using plan::OperatorType;
  OperatorMemory mem;
  switch (node.op) {
    case OperatorType::kTbScan:
      mem.build_bytes = mem.resident_bytes = config.scan_buffer_bytes;
      break;
    case OperatorType::kIxScan:
      mem.build_bytes = mem.resident_bytes = config.index_buffer_bytes;
      break;
    case OperatorType::kFetch:
      mem.build_bytes = mem.resident_bytes = config.fetch_buffer_bytes;
      break;
    case OperatorType::kFilter:
      mem.build_bytes = mem.resident_bytes = config.filter_buffer_bytes;
      break;
    case OperatorType::kNlJoin:
      mem.build_bytes = mem.resident_bytes = config.nlj_buffer_bytes;
      break;
    case OperatorType::kMsJoin:
      mem.build_bytes = mem.resident_bytes = config.msjoin_buffer_bytes;
      break;
    case OperatorType::kHsJoin: {
      // Build side = children[1] by planner convention; its *output* rows
      // populate the hash table.
      const plan::PlanNode* build =
          node.children.size() > 1 ? node.children[1] : nullptr;
      const double rows = build != nullptr ? NodeOutputCard(*build, track) : 0.0;
      const double width = build != nullptr ? build->row_width : node.row_width;
      double table_bytes = rows * (width + config.hash_entry_overhead) /
                           config.hash_table_load_factor;
      if (table_bytes > config.hash_join_heap_bytes) {
        // Grace-partitioned join: in-memory footprint capped at the heap.
        mem.spills = true;
        table_bytes = config.hash_join_heap_bytes;
      }
      mem.build_bytes = table_bytes;
      mem.resident_bytes = table_bytes;  // probed until the join finishes
      break;
    }
    case OperatorType::kSort: {
      const double bytes = NodeInputCard(node, track) * node.row_width;
      double sort_bytes = bytes * config.sort_overhead_factor;
      if (sort_bytes > config.sort_heap_bytes) {
        mem.spills = true;
        // External sort: heap during run formation, merge buffers after.
        mem.build_bytes = config.sort_heap_bytes;
        const double runs =
            std::max(2.0, std::ceil(sort_bytes / config.sort_heap_bytes));
        mem.resident_bytes =
            std::min(runs, 16.0) * config.merge_buffer_bytes;
      } else {
        mem.build_bytes = sort_bytes;
        mem.resident_bytes = sort_bytes;  // sorted data streamed out
      }
      break;
    }
    case OperatorType::kGroupBy: {
      if (!node.hash_mode) {
        // Streaming over sorted input holds one group at a time.
        mem.build_bytes = mem.resident_bytes = config.filter_buffer_bytes;
        break;
      }
      const double groups = NodeOutputCard(node, track);
      double table_bytes =
          groups *
          (node.row_width + config.agg_state_bytes + config.hash_entry_overhead) /
          config.hash_table_load_factor;
      if (table_bytes > config.group_heap_bytes) {
        mem.spills = true;
        table_bytes = config.group_heap_bytes;
      }
      mem.build_bytes = table_bytes;
      mem.resident_bytes = table_bytes;  // emitted by iterating the table
      break;
    }
    case OperatorType::kTemp: {
      const double bytes = NodeInputCard(node, track) * node.row_width;
      mem.build_bytes = mem.resident_bytes =
          std::min(bytes, config.sort_heap_bytes);
      mem.spills = bytes > config.sort_heap_bytes;
      break;
    }
    case OperatorType::kReturn:
      mem.build_bytes = mem.resident_bytes = 0.0;
      break;
  }
  return mem;
}

}  // namespace wmp::engine
