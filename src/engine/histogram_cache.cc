#include "engine/histogram_cache.h"

#include <algorithm>

namespace wmp::engine {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

HistogramCache::HistogramCache(HistogramCacheOptions options)
    : capacity_(options.capacity) {
  const size_t shards = RoundUpPow2(std::max<size_t>(options.num_shards, 1));
  shard_mask_ = shards - 1;
  shards_ = std::make_unique<Shard[]>(shards);
  // Split the budget evenly; round up so small capacities still admit one
  // entry per shard rather than zero.
  per_shard_capacity_ = capacity_ == 0 ? 0 : (capacity_ + shards - 1) / shards;
}

bool HistogramCache::Lookup(uint64_t key, double* out, size_t len,
                            uint64_t epoch) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      if (it->second->epoch < epoch) {
        // Stamped under a retired model: a stale histogram must never feed
        // the new model's regressor. Erase eagerly so the slot is free for
        // the re-binned entry this miss is about to produce.
        shard.lru.erase(it->second);
        shard.index.erase(it);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        size_.fetch_sub(1, std::memory_order_relaxed);
      } else if (it->second->epoch > epoch) {
        // The *probe* is the stale side — an in-flight flush still pinned
        // to a retired snapshot racing a publish. Miss, but leave the new
        // model's entry alone.
      } else if (it->second->bins.size() == len) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        std::copy(it->second->bins.begin(), it->second->bins.end(), out);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void HistogramCache::Insert(uint64_t key, const double* histogram, size_t len,
                            uint64_t epoch) {
  if (per_shard_capacity_ == 0) return;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh: same fingerprint means same content; bump recency (and
    // overwrite defensively in case of a width change) — unless the
    // stored entry is from a NEWER epoch, in which case the writer is an
    // in-flight stale flush and must not clobber the new model's entry.
    if (it->second->epoch <= epoch) {
      it->second->bins.assign(histogram, histogram + len);
      it->second->epoch = epoch;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    }
    return;
  }
  shard.lru.push_front(
      Entry{key, epoch, std::vector<double>(histogram, histogram + len)});
  shard.index.emplace(key, shard.lru.begin());
  insertions_.fetch_add(1, std::memory_order_relaxed);
  size_.fetch_add(1, std::memory_order_relaxed);
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    size_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void HistogramCache::Clear() {
  for (size_t s = 0; s <= shard_mask_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    size_.fetch_sub(shards_[s].lru.size(), std::memory_order_relaxed);
    shards_[s].lru.clear();
    shards_[s].index.clear();
  }
}

HistogramCacheStats HistogramCache::stats() const {
  HistogramCacheStats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.insertions = insertions_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  st.invalidations = invalidations_.load(std::memory_order_relaxed);
  st.size = size_.load(std::memory_order_relaxed);
  return st;
}

}  // namespace wmp::engine
