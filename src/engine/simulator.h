#ifndef WMP_ENGINE_SIMULATOR_H_
#define WMP_ENGINE_SIMULATOR_H_

/// \file simulator.h
/// Execution-memory simulator: the stand-in for "run the query on the DBMS
/// and read the peak working memory from the monitor".
///
/// Given a plan annotated with true cardinalities it returns the simulated
/// peak working memory `m` in megabytes: the pipeline-aware peak over the
/// TRUE cardinality track, perturbed by bounded log-normal noise modeling
/// run-to-run variance (buffer rounding, partial pipelining, allocator
/// slop). The learned models never see the simulator's internals — only
/// the resulting (plan, m) pairs, the same interface a DBMS query log
/// provides (paper step TR1).

#include <vector>

#include "engine/pipeline.h"
#include "util/random.h"

namespace wmp::engine {

/// Simulator configuration.
struct SimulatorOptions {
  MemoryModelConfig memory;
  /// Log-normal sigma of run-to-run noise (0 disables noise).
  double noise_sigma = 0.06;
  uint64_t seed = 7;
};

/// \brief Simulates peak working memory for annotated plans.
class Simulator {
 public:
  explicit Simulator(SimulatorOptions options = {})
      : options_(options), rng_(options.seed) {}

  /// Peak working memory of one query in MB. The plan must carry true
  /// cardinality annotations (falls back to estimates otherwise, which is
  /// only appropriate in tests).
  double SimulatePeakMemoryMb(const plan::PlanNode& root);

  /// Batched simulation over many plans: the deterministic peaks are
  /// computed in parallel on the worker pool (the analysis is pure), then
  /// run-to-run noise is applied serially in index order — so the result is
  /// bitwise identical to calling SimulatePeakMemoryMb in a loop, while the
  /// expensive part scales with cores. Null plan entries are not allowed.
  std::vector<double> SimulatePeakMemoryMbBatch(
      const std::vector<const plan::PlanNode*>& plans);

  /// Deterministic component (no noise), for tests and calibration.
  double NoiselessPeakMemoryMb(const plan::PlanNode& root) const;

  const SimulatorOptions& options() const { return options_; }

 private:
  SimulatorOptions options_;
  Rng rng_;
};

}  // namespace wmp::engine

#endif  // WMP_ENGINE_SIMULATOR_H_
