#include "engine/batch_scorer.h"

#include <algorithm>
#include <utility>

#include "engine/histogram_cache.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace wmp::engine {

BatchScorer::BatchScorer(const core::LearnedWmpModel* model,
                         BatchScorerOptions options)
    : model_(model),
      options_(options),
      stats_mutex_(std::make_unique<std::mutex>()) {}

BatchScorer::BatchScorer(std::unique_ptr<core::LearnedWmpModel> owned,
                         BatchScorerOptions options)
    : owned_(std::move(owned)),
      model_(owned_.get()),
      options_(options),
      stats_mutex_(std::make_unique<std::mutex>()) {}

Result<BatchScorer> BatchScorer::FromFile(const std::string& path,
                                          BatchScorerOptions options) {
  WMP_ASSIGN_OR_RETURN(core::LearnedWmpModel model,
                       core::LearnedWmpModel::LoadFromFile(path));
  return BatchScorer(
      std::make_unique<core::LearnedWmpModel>(std::move(model)), options);
}

BatchScorerStats BatchScorer::stats() const {
  std::lock_guard<std::mutex> lock(*stats_mutex_);
  return stats_;
}

Result<std::vector<double>> BatchScorer::ScoreWithCache(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<core::WorkloadBatch>& batches,
    BatchScorerStats* stats) const {
  const size_t k = static_cast<size_t>(model_->templates().num_templates());
  ml::Matrix h(batches.size(), k);
  // Fingerprinting hashes every member query's content; on large flushes
  // it rivals featurize/assign, so spread it over the worker pool instead
  // of serializing the dispatcher on it.
  std::vector<uint64_t> keys(batches.size());
  // Grain 1: a flush of few-but-large workloads (batch-1000 streams) still
  // spreads its hashing across workers.
  util::ParallelFor(batches.size(), 1, [&](size_t begin, size_t end) {
    for (size_t w = begin; w < end; ++w) {
      keys[w] = core::WorkloadFingerprint(records, batches[w].query_indices);
    }
  });
  std::vector<size_t> miss_rows;
  for (size_t w = 0; w < batches.size(); ++w) {
    if (options_.cache->Lookup(keys[w], h.RowPtr(w), k)) {
      ++stats->cache_hits;
    } else {
      ++stats->cache_misses;
      miss_rows.push_back(w);
    }
  }
  if (!miss_rows.empty()) {
    WMP_RETURN_IF_ERROR(
        model_->BinWorkloadsInto(records, batches, miss_rows, &h));
    for (size_t w : miss_rows) {
      options_.cache->Insert(keys[w], h.RowPtr(w), k);
    }
  }
  return model_->PredictFromHistogramMatrix(std::move(h));
}

Result<BatchScoreResult> BatchScorer::ScoreWorkloads(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<core::WorkloadBatch>& batches) const {
  util::ScopedParallelism scope(options_.num_threads);
  {
    // A failed call must not leave the legacy last-call getter reporting a
    // previous call's throughput.
    std::lock_guard<std::mutex> lock(*stats_mutex_);
    stats_ = BatchScorerStats{};
  }
  BatchScoreResult result;
  Stopwatch sw;
  if (options_.cache != nullptr && !batches.empty()) {
    WMP_ASSIGN_OR_RETURN(result.predictions,
                         ScoreWithCache(records, batches, &result.stats));
  } else {
    WMP_ASSIGN_OR_RETURN(result.predictions,
                         model_->PredictWorkloads(records, batches));
  }
  const double elapsed_ms = sw.ElapsedMillis();

  size_t num_queries = 0;
  for (const core::WorkloadBatch& b : batches) {
    num_queries += b.query_indices.size();
  }
  result.stats.num_workloads = batches.size();
  result.stats.num_queries = num_queries;
  result.stats.elapsed_ms = elapsed_ms;
  const double elapsed_s = elapsed_ms / 1e3;
  result.stats.queries_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(num_queries) / elapsed_s : 0.0;
  result.stats.workloads_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(batches.size()) / elapsed_s : 0.0;
  {
    std::lock_guard<std::mutex> lock(*stats_mutex_);
    stats_ = result.stats;
  }
  return result;
}

Result<BatchScoreResult> BatchScorer::ScoreLog(
    const std::vector<workloads::QueryRecord>& records, int batch_size) const {
  if (batch_size < 1) {
    return Status::InvalidArgument("ScoreLog batch_size must be >= 1");
  }
  return ScoreWorkloads(records,
                        MakeConsecutiveBatches(records.size(), batch_size));
}

std::vector<core::WorkloadBatch> MakeConsecutiveBatches(size_t num_queries,
                                                        int batch_size) {
  std::vector<core::WorkloadBatch> batches;
  if (batch_size < 1) return batches;
  const size_t s = static_cast<size_t>(batch_size);
  batches.reserve((num_queries + s - 1) / s);
  for (size_t begin = 0; begin < num_queries; begin += s) {
    core::WorkloadBatch batch;
    const size_t end = std::min(begin + s, num_queries);
    batch.query_indices.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      batch.query_indices.push_back(static_cast<uint32_t>(i));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace wmp::engine
