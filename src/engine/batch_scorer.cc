#include "engine/batch_scorer.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <utility>

#include "engine/histogram_cache.h"
#include "engine/template_cache.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace wmp::engine {

BatchScorer::BatchScorer(const core::LearnedWmpModel* model,
                         BatchScorerOptions options)
    : options_(options),
      model_mutex_(std::make_unique<std::mutex>()),
      // Non-owning: empty control block, never deletes the borrowed model.
      model_(std::shared_ptr<const void>(), model),
      stats_mutex_(std::make_unique<std::mutex>()) {}

BatchScorer::BatchScorer(std::shared_ptr<const core::LearnedWmpModel> model,
                         BatchScorerOptions options)
    : options_(options),
      model_mutex_(std::make_unique<std::mutex>()),
      model_(std::move(model)),
      stats_mutex_(std::make_unique<std::mutex>()) {}

Result<BatchScorer> BatchScorer::FromFile(const std::string& path,
                                          BatchScorerOptions options) {
  WMP_ASSIGN_OR_RETURN(core::LearnedWmpModel model,
                       core::LearnedWmpModel::LoadFromFile(path));
  return BatchScorer(
      std::make_shared<const core::LearnedWmpModel>(std::move(model)),
      options);
}

void BatchScorer::PublishModel(
    std::shared_ptr<const core::LearnedWmpModel> model) {
  if (model == nullptr) return;  // a scorer never goes back to model-less
  // The retired snapshot's shared_ptr drops outside the lock: if this is
  // the last reference, the old model's destructor must not run under the
  // mutex that in-flight pinners are about to take.
  std::shared_ptr<const core::LearnedWmpModel> retired;
  {
    std::lock_guard<std::mutex> lock(*model_mutex_);
    retired = std::move(model_);
    model_ = std::move(model);
    ++epoch_;  // implicitly invalidates both caches' entries
  }
}

BatchScorer::Snapshot BatchScorer::PinSnapshot() const {
  std::lock_guard<std::mutex> lock(*model_mutex_);
  return Snapshot{model_, epoch_};
}

std::shared_ptr<const core::LearnedWmpModel> BatchScorer::model_snapshot()
    const {
  std::lock_guard<std::mutex> lock(*model_mutex_);
  return model_;
}

uint64_t BatchScorer::model_epoch() const {
  std::lock_guard<std::mutex> lock(*model_mutex_);
  return epoch_;
}

BatchScorerStats BatchScorer::stats() const {
  std::lock_guard<std::mutex> lock(*stats_mutex_);
  return stats_;
}

Result<std::vector<double>> BatchScorer::ScoreWithCache(
    const Snapshot& snap, const std::vector<workloads::QueryRecord>& records,
    const std::vector<core::WorkloadBatch>& batches,
    BatchScorerStats* stats) const {
  const core::LearnedWmpModel& model = *snap.model;
  const size_t k = static_cast<size_t>(model.templates().num_templates());
  ml::Matrix h(batches.size(), k);
  // Level 1 — whole-workload histograms by fingerprint.
  std::vector<uint64_t> keys;
  std::vector<size_t> miss_rows;
  if (options_.cache != nullptr) {
    // Fingerprinting hashes every member query's content; on large flushes
    // it rivals featurize/assign, so spread it over the worker pool instead
    // of serializing the dispatcher on it. Grain 1: a flush of
    // few-but-large workloads (batch-1000 streams) still spreads across
    // workers.
    keys.resize(batches.size());
    util::ParallelFor(batches.size(), 1, [&](size_t begin, size_t end) {
      for (size_t w = begin; w < end; ++w) {
        keys[w] = core::WorkloadFingerprint(records, batches[w].query_indices);
      }
    });
    for (size_t w = 0; w < batches.size(); ++w) {
      if (options_.cache->Lookup(keys[w], h.RowPtr(w), k, snap.epoch)) {
        ++stats->cache_hits;
      } else {
        ++stats->cache_misses;
        miss_rows.push_back(w);
      }
    }
  } else {
    miss_rows.resize(batches.size());
    std::iota(miss_rows.begin(), miss_rows.end(), size_t{0});
  }
  if (!miss_rows.empty()) {
    // Level 2 — per-query template ids by content fingerprint, threaded
    // through the binning path's resolve/featurize-misses/backfill split.
    // The view pins this call's epoch so everything resolved and learned
    // is stamped against the pinned model snapshot.
    std::optional<TemplateIdCache::View> view;
    core::TemplateIdResolver* resolver = nullptr;
    if (options_.template_cache != nullptr) {
      view.emplace(options_.template_cache, snap.epoch);
      resolver = &*view;
    }
    WMP_RETURN_IF_ERROR(
        model.BinWorkloadsInto(records, batches, miss_rows, &h, resolver));
    if (view.has_value()) {
      stats->template_cache_hits += view->hits();
      stats->template_cache_misses += view->misses();
    }
    if (options_.cache != nullptr) {
      for (size_t w : miss_rows) {
        options_.cache->Insert(keys[w], h.RowPtr(w), k, snap.epoch);
      }
    }
  }
  return model.PredictFromHistogramMatrix(std::move(h));
}

Result<BatchScoreResult> BatchScorer::ScoreWorkloads(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<core::WorkloadBatch>& batches) const {
  util::ScopedParallelism scope(options_.num_threads);
  {
    // A failed call must not leave the legacy last-call getter reporting a
    // previous call's throughput.
    std::lock_guard<std::mutex> lock(*stats_mutex_);
    stats_ = BatchScorerStats{};
  }
  // RCU read side: pin the (model, epoch) pair once; a concurrent
  // PublishModel retires the old snapshot without disturbing this call.
  const Snapshot snap = PinSnapshot();
  if (snap.model == nullptr) {
    return Status::FailedPrecondition("BatchScorer has no model");
  }
  BatchScoreResult result;
  Stopwatch sw;
  if ((options_.cache != nullptr || options_.template_cache != nullptr) &&
      !batches.empty()) {
    WMP_ASSIGN_OR_RETURN(result.predictions,
                         ScoreWithCache(snap, records, batches, &result.stats));
  } else {
    WMP_ASSIGN_OR_RETURN(result.predictions,
                         snap.model->PredictWorkloads(records, batches));
  }
  const double elapsed_ms = sw.ElapsedMillis();

  size_t num_queries = 0;
  for (const core::WorkloadBatch& b : batches) {
    num_queries += b.query_indices.size();
  }
  result.stats.num_workloads = batches.size();
  result.stats.num_queries = num_queries;
  result.stats.elapsed_ms = elapsed_ms;
  const double elapsed_s = elapsed_ms / 1e3;
  result.stats.queries_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(num_queries) / elapsed_s : 0.0;
  result.stats.workloads_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(batches.size()) / elapsed_s : 0.0;
  {
    std::lock_guard<std::mutex> lock(*stats_mutex_);
    stats_ = result.stats;
  }
  return result;
}

Result<BatchScoreResult> BatchScorer::ScoreLog(
    const std::vector<workloads::QueryRecord>& records, int batch_size) const {
  if (batch_size < 1) {
    return Status::InvalidArgument("ScoreLog batch_size must be >= 1");
  }
  return ScoreWorkloads(records,
                        MakeConsecutiveBatches(records.size(), batch_size));
}

std::vector<core::WorkloadBatch> MakeConsecutiveBatches(size_t num_queries,
                                                        int batch_size) {
  std::vector<core::WorkloadBatch> batches;
  if (batch_size < 1) return batches;
  const size_t s = static_cast<size_t>(batch_size);
  batches.reserve((num_queries + s - 1) / s);
  for (size_t begin = 0; begin < num_queries; begin += s) {
    core::WorkloadBatch batch;
    const size_t end = std::min(begin + s, num_queries);
    batch.query_indices.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      batch.query_indices.push_back(static_cast<uint32_t>(i));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace wmp::engine
