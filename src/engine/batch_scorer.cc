#include "engine/batch_scorer.h"

#include <algorithm>

#include "util/parallel.h"
#include "util/timer.h"

namespace wmp::engine {

BatchScorer::BatchScorer(const core::LearnedWmpModel* model,
                         BatchScorerOptions options)
    : model_(model), options_(options) {}

BatchScorer::BatchScorer(std::unique_ptr<core::LearnedWmpModel> owned,
                         BatchScorerOptions options)
    : owned_(std::move(owned)), model_(owned_.get()), options_(options) {}

Result<BatchScorer> BatchScorer::FromFile(const std::string& path,
                                          BatchScorerOptions options) {
  WMP_ASSIGN_OR_RETURN(core::LearnedWmpModel model,
                       core::LearnedWmpModel::LoadFromFile(path));
  return BatchScorer(
      std::make_unique<core::LearnedWmpModel>(std::move(model)), options);
}

Result<std::vector<double>> BatchScorer::ScoreWorkloads(
    const std::vector<workloads::QueryRecord>& records,
    const std::vector<core::WorkloadBatch>& batches) {
  util::ScopedParallelism scope(options_.num_threads);
  stats_ = BatchScorerStats{};  // a failed call must not leave stale stats
  Stopwatch sw;
  WMP_ASSIGN_OR_RETURN(std::vector<double> predictions,
                       model_->PredictWorkloads(records, batches));
  const double elapsed_ms = sw.ElapsedMillis();

  size_t num_queries = 0;
  for (const core::WorkloadBatch& b : batches) {
    num_queries += b.query_indices.size();
  }
  stats_.num_workloads = batches.size();
  stats_.num_queries = num_queries;
  stats_.elapsed_ms = elapsed_ms;
  const double elapsed_s = elapsed_ms / 1e3;
  stats_.queries_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(num_queries) / elapsed_s : 0.0;
  stats_.workloads_per_sec =
      elapsed_s > 0.0 ? static_cast<double>(batches.size()) / elapsed_s : 0.0;
  return predictions;
}

Result<std::vector<double>> BatchScorer::ScoreLog(
    const std::vector<workloads::QueryRecord>& records, int batch_size) {
  if (batch_size < 1) {
    return Status::InvalidArgument("ScoreLog batch_size must be >= 1");
  }
  return ScoreWorkloads(records,
                        MakeConsecutiveBatches(records.size(), batch_size));
}

std::vector<core::WorkloadBatch> MakeConsecutiveBatches(size_t num_queries,
                                                        int batch_size) {
  std::vector<core::WorkloadBatch> batches;
  if (batch_size < 1) return batches;
  const size_t s = static_cast<size_t>(batch_size);
  batches.reserve((num_queries + s - 1) / s);
  for (size_t begin = 0; begin < num_queries; begin += s) {
    core::WorkloadBatch batch;
    const size_t end = std::min(begin + s, num_queries);
    batch.query_indices.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      batch.query_indices.push_back(static_cast<uint32_t>(i));
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace wmp::engine
