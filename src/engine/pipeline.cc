#include "engine/pipeline.h"

#include <algorithm>

namespace wmp::engine {

namespace {

MemoryProfile Analyze(const plan::PlanNode& node,
                      const MemoryModelConfig& config, CardTrack track) {
  using plan::OperatorType;
  const OperatorMemory own = ComputeOperatorMemory(node, config, track);

  std::vector<MemoryProfile> kids;
  kids.reserve(node.children.size());
  MemoryProfile out;
  for (const auto& child : node.children) {
    kids.push_back(Analyze(*child, config, track));
    out.spill_count += kids.back().spill_count;
  }
  if (own.spills) ++out.spill_count;

  switch (node.op) {
    case OperatorType::kSort:
    case OperatorType::kTemp: {
      // Build phase: the child's *streaming* footprint coexists with the
      // growing buffer; the child's own internal build phases happened
      // before this operator allocated anything.
      const MemoryProfile& c = kids[0];
      const double build_phase = c.active_bytes + own.build_bytes;
      out.peak_bytes =
          std::max({c.peak_bytes, build_phase, own.resident_bytes});
      out.active_bytes = own.resident_bytes;
      return out;
    }
    case OperatorType::kGroupBy: {
      const MemoryProfile& c = kids[0];
      if (node.hash_mode) {
        const double build_phase = c.active_bytes + own.build_bytes;
        out.peak_bytes =
            std::max({c.peak_bytes, build_phase, own.resident_bytes});
        out.active_bytes = own.resident_bytes;
      } else {
        out.active_bytes = own.build_bytes + c.active_bytes;
        out.peak_bytes = std::max(c.peak_bytes + own.build_bytes,
                                  out.active_bytes);
      }
      return out;
    }
    case OperatorType::kHsJoin: {
      const MemoryProfile& probe = kids[0];
      const MemoryProfile& build = kids[1];
      const double table = own.resident_bytes;
      // Build phase streams the build child into the table; probe phase
      // keeps the full table resident while the probe pipeline (including
      // its internal phases) runs.
      const double build_phase = build.active_bytes + own.build_bytes;
      out.peak_bytes =
          std::max({build.peak_bytes, build_phase, table + probe.peak_bytes});
      out.active_bytes = table + probe.active_bytes;
      return out;
    }
    case OperatorType::kNlJoin:
    case OperatorType::kMsJoin: {
      const MemoryProfile& c0 = kids[0];
      const MemoryProfile& c1 = kids[1];
      out.active_bytes = own.build_bytes + c0.active_bytes + c1.active_bytes;
      out.peak_bytes =
          own.build_bytes + std::max(c0.peak_bytes + c1.active_bytes,
                                     c1.peak_bytes + c0.active_bytes);
      out.peak_bytes = std::max(out.peak_bytes, out.active_bytes);
      return out;
    }
    default: {  // streaming unary ops and leaves
      double child_active = 0.0, child_peak = 0.0;
      if (!kids.empty()) {
        child_active = kids[0].active_bytes;
        child_peak = kids[0].peak_bytes;
      }
      out.active_bytes = own.build_bytes + child_active;
      out.peak_bytes = std::max(child_peak + own.build_bytes, out.active_bytes);
      return out;
    }
  }
}

}  // namespace

MemoryProfile AnalyzePlanMemory(const plan::PlanNode& root,
                                const MemoryModelConfig& config,
                                CardTrack track) {
  MemoryProfile profile = Analyze(root, config, track);
  profile.active_bytes += config.executor_base_bytes;
  profile.peak_bytes += config.executor_base_bytes;
  return profile;
}

}  // namespace wmp::engine
