#ifndef WMP_ENGINE_SCORING_SERVICE_H_
#define WMP_ENGINE_SCORING_SERVICE_H_

/// \file scoring_service.h
/// Asynchronous, sharded scoring service: the serving layer between
/// concurrent clients (a DBMS admission controller, the paper's §I
/// deployment story) and the batched inference path (engine::BatchScorer).
///
/// Architecture
///
///     clients ──Submit()──▶ router ──▶ per-shard MPSC queue ──▶ dispatcher
///                                                                   │
///                          future ◀── promise ◀── BatchScorer ◀─────┘
///                               (histogram + template-id caches in front)
///
///  * **Async submission.** `Submit` enqueues one workload and returns a
///    `std::future<Result<double>>` immediately; clients overlap their own
///    work (or thousands of peers) with scoring.
///  * **Sharded scoring.** The service hosts one trained model per shard —
///    per tenant, per benchmark, or replicas of one model — with a
///    dedicated dispatcher thread and `BatchScorer` each. The router hashes
///    the tenant/model key to a shard, so multiple models serve
///    concurrently. Dispatchers issue their parallel work through the
///    process-wide util/parallel.h pool, so shards share worker threads
///    instead of oversubscribing cores.
///  * **Adaptive cross-client micro-batching.** A dispatcher drains its
///    queue into one flush when `max_batch` workloads are pending, when
///    `max_delay_us` has elapsed since the flush began collecting — or,
///    with `adaptive_flush` (default), the moment every
///    submitted-but-unfulfilled request of the shard is already in hand:
///    then no further arrival can be pending (closed-loop clients are all
///    blocked on this very flush), so waiting out the delay window would be
///    pure added latency. Open-loop clients keep deep queues and still
///    flush full batches; `ServiceStats` counts each flush's trigger so
///    the controller's behavior is observable.
///  * **Two-level caching.** Each shard owns a sharded-LRU
///    `engine::HistogramCache` (whole workloads, keyed by
///    `core::WorkloadFingerprint`) and a `engine::TemplateIdCache`
///    (per-query template ids, keyed by content fingerprint) — so exact
///    workload repeats skip the entire front half, and *novel combinations
///    of known queries* skip featurize/assign per member query. Hit-path
///    predictions are bitwise identical to cold-path ones.
///  * **RCU model hot-swap.** Shards hold their model as a
///    `std::shared_ptr<const LearnedWmpModel>` snapshot; `PublishModel`
///    installs a retrained replacement atomically between flushes while
///    traffic keeps flowing — in-flight flushes finish on the snapshot they
///    pinned, and both caches version on model epoch so a stale entry can
///    never serve the new model's predictions. `wmpctl train --publish`
///    exercises the full retrain-and-swap loop. `PublishAll` is the
///    coordinated form — one artifact swapped across every shard
///    all-or-nothing, recorded in an engine::ModelRegistry for rollback —
///    and with a warm corpus registered (`SetWarmCorpus`) each swap
///    re-assigns the template cache's resident keys under the new model in
///    the background, so steady-state traffic does not pay a full miss
///    pass after a rollout (warmed entries counted in `ServiceStats`).
///  * **Clean shutdown.** `Stop` (or the destructor) closes the queues,
///    scores everything already accepted, fulfills every promise, and joins
///    the dispatchers — no future is ever abandoned. Submissions after Stop
///    resolve immediately with FailedPrecondition.
///  * **Failure isolation.** Requests are validated at the Submit trust
///    boundary (query indices must lie inside the submitted log — the
///    featurizers index it unchecked). If a flush still fails as a batch
///    (e.g. an empty workload poisons a variable-length model's histogram
///    pass), the dispatcher rescores that flush request-by-request so only
///    the offending futures carry the error.
///
/// Thread-safety: `Submit`/`SubmitToShard`/`PublishModel`/`stats` are safe
/// from any number of threads for the service's whole lifetime.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/learned_wmp.h"
#include "core/workload.h"
#include "engine/batch_scorer.h"
#include "engine/histogram_cache.h"
#include "engine/model_registry.h"
#include "engine/template_cache.h"
#include "util/mpsc_queue.h"

namespace wmp::engine {

/// Serving knobs. Defaults favor throughput under concurrency while
/// keeping worst-case added latency at a fraction of a typical flush.
struct ScoringServiceOptions {
  /// Flush a shard's pending requests once this many are collected.
  size_t max_batch = 64;
  /// ... or once this many microseconds passed since the flush started
  /// collecting, whichever comes first.
  int64_t max_delay_us = 200;
  /// ... or as soon as no further arrival can be pending (every submitted
  /// request of the shard is already collected) — the adaptive controller
  /// that spares closed-loop clients the fixed delay window.
  bool adaptive_flush = true;
  /// Histogram-cache entries per shard; 0 disables level-1 caching.
  size_t cache_capacity = 4096;
  /// Template-id-cache entries per shard; 0 disables level-2 caching.
  size_t template_cache_capacity = 1 << 16;
  /// Lock shards inside each per-shard cache (both levels).
  size_t cache_shards = 8;
  /// Worker-pool budget for each dispatcher's scoring calls; 0 = library
  /// default. Shards share the process-wide pool either way.
  int num_threads = 0;
  /// Re-warm each shard's template-id cache in the background after a
  /// PublishModel/PublishAll hot-swap (requires SetWarmCorpus; see below).
  /// Off, a swap costs one full miss pass over the working set at p99.
  bool warm_on_publish = true;
  /// Queries re-assigned per warming step — bounds how long one background
  /// chunk monopolizes the worker pool, and how stale a warm can get
  /// before noticing a newer publish and yielding to it.
  size_t warm_batch = 512;
};

/// Point-in-time service counters (monotonic except queue_depth).
struct ServiceStats {
  uint64_t submitted = 0;   ///< requests accepted into a queue
  uint64_t completed = 0;   ///< futures fulfilled with a prediction
  uint64_t failed = 0;      ///< futures fulfilled with an error
  uint64_t flushes = 0;     ///< dispatcher scoring cycles
  /// Why each flush fired (flushes == sum of the four):
  uint64_t flushes_full = 0;      ///< collected max_batch requests
  uint64_t flushes_adaptive = 0;  ///< no further arrival could be pending
  uint64_t flushes_deadline = 0;  ///< waited out the max_delay_us window
  uint64_t flushes_drain = 0;     ///< shutdown drain after Close
  uint64_t cache_hits = 0;    ///< level 1: whole-workload histogram cache
  uint64_t cache_misses = 0;
  uint64_t template_cache_hits = 0;  ///< level 2: per-query template ids
  uint64_t template_cache_misses = 0;
  uint64_t models_published = 0;  ///< per-shard hot-swaps (PublishAll adds
                                  ///< one per shard it republished)
  /// Template-cache entries re-assigned under a new model epoch by the
  /// post-publish background warmer.
  uint64_t template_entries_warmed = 0;
  uint64_t max_queue_depth = 0;  ///< high-water mark of any shard queue
  uint64_t queue_depth = 0;      ///< currently pending across shards
  uint64_t total_latency_us = 0; ///< sum of submit→fulfill times
  uint64_t max_latency_us = 0;
  /// Batch traversal kernel scores run through: the numeric value of
  /// `ml::TraverseKernel` (render via ml::TraverseKernelIdName), or 0 when
  /// shard 0 serves the reference (non-compiled) path.
  uint64_t traverse_kernel_id = 0;
  /// Cold-path centroid assignment (shard 0's model; see
  /// ml::CentroidIndex::AssignStats). All zero when the pruned path never
  /// ran — reference scan, rule-based templates, or an all-hit cache.
  uint64_t assign_rows = 0;            ///< rows assigned by the pruned path
  uint64_t assign_bound_skips = 0;     ///< centroids skipped by the c-c bound
  uint64_t assign_early_exits = 0;     ///< distances abandoned part-way
  uint64_t assign_full_distances = 0;  ///< distances computed to the end

  double avg_batch() const {
    return flushes > 0 ? static_cast<double>(completed + failed) /
                             static_cast<double>(flushes)
                       : 0.0;
  }
  double avg_latency_us() const {
    const uint64_t n = completed + failed;
    return n > 0 ? static_cast<double>(total_latency_us) /
                       static_cast<double>(n)
                 : 0.0;
  }
  double cache_hit_rate() const {
    const uint64_t n = cache_hits + cache_misses;
    return n > 0 ? static_cast<double>(cache_hits) / static_cast<double>(n)
                 : 0.0;
  }
  double template_cache_hit_rate() const {
    const uint64_t n = template_cache_hits + template_cache_misses;
    return n > 0 ? static_cast<double>(template_cache_hits) /
                       static_cast<double>(n)
                 : 0.0;
  }
};

/// \brief Async sharded scoring front end over one or more trained models.
class ScoringService {
 public:
  /// One shard per entry of `models` (at least one): distinct per-tenant
  /// models, or the same model repeated to spread one model's dispatch
  /// over several queues. Shared ownership is the publishable form —
  /// PublishModel can retire any of them under live traffic.
  explicit ScoringService(
      std::vector<std::shared_ptr<const core::LearnedWmpModel>> models,
      ScoringServiceOptions options = {});

  /// Borrowing overload for callers that own their models for the whole
  /// service lifetime (models must be trained and outlive the service —
  /// and outlive any PublishModel that retires them).
  explicit ScoringService(std::vector<const core::LearnedWmpModel*> models,
                          ScoringServiceOptions options = {});

  /// Braced-list convenience for the borrowing form —
  /// `ScoringService({&m1, &m2})` — which would otherwise be ambiguous
  /// between the two vector overloads.
  ScoringService(std::initializer_list<const core::LearnedWmpModel*> models,
                 ScoringServiceOptions options = {});
  ~ScoringService();
  ScoringService(const ScoringService&) = delete;
  ScoringService& operator=(const ScoringService&) = delete;

  /// Enqueues one workload (member rows of `records`) for the shard
  /// `ShardForTenant(tenant)` and returns a future for its predicted
  /// memory demand (MB). `records` is borrowed and must stay alive and
  /// unmodified until the future resolves.
  std::future<Result<double>> Submit(
      std::string_view tenant,
      const std::vector<workloads::QueryRecord>& records,
      std::vector<uint32_t> query_indices);

  /// Same, addressed straight to a shard (callers that already routed).
  std::future<Result<double>> SubmitToShard(
      size_t shard, const std::vector<workloads::QueryRecord>& records,
      std::vector<uint32_t> query_indices);

  /// RCU hot-swap: installs `model` (non-null, trained) as shard `shard`'s
  /// serving snapshot without pausing traffic. Requests in the flush under
  /// way score on the old snapshot; every later flush scores on the new
  /// one, with both cache levels implicitly invalidated by the epoch bump.
  /// Safe from any thread, any time — including under full client load.
  Status PublishModel(size_t shard,
                      std::shared_ptr<const core::LearnedWmpModel> model);

  /// Coordinated rollout: atomically installs `model` as the serving
  /// snapshot of EVERY shard — the publish a tenant whose replicas share
  /// one model actually wants, where PublishModel is the single-shard
  /// primitive. All-or-nothing: the artifact is validated up front
  /// (non-null, trained) and concurrent PublishAll calls serialize on one
  /// publish mutex, so readers can race the swap shard-by-shard (that is
  /// RCU as usual) but can never observe shards pinned to two *different
  /// rollouts* once both publishes return. With a `registry`, the artifact
  /// is additionally recorded as the new current epoch of `name`; the
  /// returned value is that registry epoch (0 when no registry is given).
  /// After the swap each shard's template-id cache re-warms in the
  /// background (see SetWarmCorpus).
  Result<uint64_t> PublishAll(
      std::shared_ptr<const core::LearnedWmpModel> model,
      ModelRegistry* registry = nullptr, const std::string& name = {});

  /// Coordinated rollback: pops `name`'s current registry epoch and
  /// re-publishes the previous one across every shard. The registry pop
  /// and the shard swap happen under the same rollout mutex as
  /// PublishAll, so a racing publish and rollback serialize as two whole
  /// rollouts — the shards and the registry's current entry can never
  /// disagree. Returns the restored registry epoch.
  Result<uint64_t> RollbackAll(ModelRegistry* registry,
                               const std::string& name);

  /// Registers the query log the background cache warmer re-assigns after
  /// a hot-swap: resident template-cache keys are matched to these records
  /// by content fingerprint and re-assigned under the new model in bounded
  /// batches, so a swap no longer costs a full miss pass at p99. `records`
  /// is borrowed and must stay alive and unmodified until the service
  /// stops or the corpus is replaced (nullptr disables warming).
  void SetWarmCorpus(const std::vector<workloads::QueryRecord>* records);

  /// Registers `callback` to run on the dispatching thread after each
  /// flush has fulfilled its promises (nullptr unregisters). This is the
  /// "futures may be ready" doorbell for non-blocking consumers: the
  /// event-loop net::ReactorServer parks Submit futures and must not block
  /// a thread in get(), so it registers a callback that writes its wakeup
  /// fd and drains completed futures from the loop. The callback must be
  /// cheap and must not call back into the service.
  void SetCompletionCallback(std::function<void()> callback);

  /// Stable tenant/model-key router: util::HashString(tenant) mod shards.
  size_t ShardForTenant(std::string_view tenant) const;

  /// Closes the queues, scores everything accepted, joins the dispatchers.
  /// Idempotent; also run by the destructor.
  void Stop();

  ServiceStats stats() const;
  bool stopped() const { return stopped_.load(std::memory_order_relaxed); }
  size_t num_shards() const { return shards_.size(); }
  /// Shard's current model snapshot; holding it keeps the model alive
  /// across hot-swaps (may be null only for the degenerate no-model
  /// service).
  std::shared_ptr<const core::LearnedWmpModel> model(size_t shard) const {
    return shards_[shard]->scorer->model_snapshot();
  }

 private:
  struct Request {
    const std::vector<workloads::QueryRecord>* records;
    core::WorkloadBatch batch;
    std::promise<Result<double>> promise;
    std::chrono::steady_clock::time_point submit_time;
  };
  struct Shard {
    std::unique_ptr<HistogramCache> cache;          // null when disabled
    std::unique_ptr<TemplateIdCache> template_cache;  // null when disabled
    std::unique_ptr<BatchScorer> scorer;
    util::MpscQueue<std::unique_ptr<Request>> queue;
    /// Submitted-but-unfulfilled requests — the adaptive controller's
    /// signal. Incremented before Push, decremented as each promise is
    /// fulfilled, so `inflight <= collected batch` proves no further
    /// arrival can be pending.
    std::atomic<uint64_t> inflight{0};
    std::thread dispatcher;
    /// Post-publish template-cache warmer. At most one per shard; a newer
    /// publish joins the stale warmer (it aborts at its next chunk
    /// boundary via the epoch check) before starting its own.
    std::thread warmer;
    std::mutex warm_mutex;
  };
  /// What ended a flush's collection phase (ServiceStats counters).
  enum class FlushReason { kFull, kAdaptive, kDeadline, kDrain };

  /// Fingerprint-indexed view of the warm corpus, snapshotted by warmers
  /// so SetWarmCorpus can swap it mid-warm without a data race.
  struct WarmCorpus {
    const std::vector<workloads::QueryRecord>* records = nullptr;
    std::unordered_map<uint64_t, uint32_t> by_fingerprint;
  };

  void DispatcherLoop(Shard* shard);
  void Flush(Shard* shard, std::vector<std::unique_ptr<Request>>* requests,
             FlushReason reason);
  void Fulfill(Shard* shard, Request* request, Result<double> outcome);
  /// Runs the registered completion callback (if any) after a flush.
  void NotifyCompletion();
  /// Launches the background warmer for `shard` (joins a stale one first).
  /// No-op without a corpus, a template cache, or warm_on_publish.
  void StartWarm(Shard* shard);
  void WarmShard(Shard* shard);

  ScoringServiceOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::mutex stop_mutex_;  // serializes Stop vs destructor
  std::atomic<bool> stopped_{false};
  std::mutex publish_all_mutex_;  // serializes cross-shard rollouts
  mutable std::mutex warm_corpus_mutex_;
  std::shared_ptr<const WarmCorpus> warm_corpus_;
  /// Swapped whole via shared_ptr so dispatchers snapshot it without
  /// holding a lock across the user callback.
  mutable std::mutex completion_callback_mutex_;
  std::shared_ptr<const std::function<void()>> completion_callback_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> flushes_full_{0};
  std::atomic<uint64_t> flushes_adaptive_{0};
  std::atomic<uint64_t> flushes_deadline_{0};
  std::atomic<uint64_t> flushes_drain_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> template_cache_hits_{0};
  std::atomic<uint64_t> template_cache_misses_{0};
  std::atomic<uint64_t> models_published_{0};
  std::atomic<uint64_t> template_entries_warmed_{0};
  std::atomic<uint64_t> max_queue_depth_{0};
  std::atomic<uint64_t> total_latency_us_{0};
  std::atomic<uint64_t> max_latency_us_{0};
};

}  // namespace wmp::engine

#endif  // WMP_ENGINE_SCORING_SERVICE_H_
