#include "engine/simulator.h"

#include <algorithm>
#include <cmath>

#include "util/parallel.h"

namespace wmp::engine {

namespace {
constexpr double kBytesPerMb = 1024.0 * 1024.0;
}

double Simulator::NoiselessPeakMemoryMb(const plan::PlanNode& root) const {
  const MemoryProfile profile =
      AnalyzePlanMemory(root, options_.memory, CardTrack::kTrue);
  return profile.peak_bytes / kBytesPerMb;
}

double Simulator::SimulatePeakMemoryMb(const plan::PlanNode& root) {
  double mb = NoiselessPeakMemoryMb(root);
  if (options_.noise_sigma > 0.0) {
    // Bounded log-normal: clamp to +-3 sigma to keep labels physical.
    const double z = std::clamp(rng_.Normal(0.0, 1.0), -3.0, 3.0);
    mb *= std::exp(options_.noise_sigma * z);
  }
  return mb;
}

std::vector<double> Simulator::SimulatePeakMemoryMbBatch(
    const std::vector<const plan::PlanNode*>& plans) {
  std::vector<double> mb(plans.size());
  util::ParallelFor(plans.size(), 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      mb[i] = NoiselessPeakMemoryMb(*plans[i]);
    }
  });
  if (options_.noise_sigma > 0.0) {
    // Serial: the noise stream order is part of the dataset's determinism.
    for (double& m : mb) {
      const double z = std::clamp(rng_.Normal(0.0, 1.0), -3.0, 3.0);
      m *= std::exp(options_.noise_sigma * z);
    }
  }
  return mb;
}

}  // namespace wmp::engine
