#ifndef WMP_ENGINE_MODEL_REGISTRY_H_
#define WMP_ENGINE_MODEL_REGISTRY_H_

/// \file model_registry.h
/// Named, epoch-stamped registry of published model artifacts — the
/// operational memory behind PublishAll and Rollback.
///
/// Production model servers (TF-Serving's versioned servables, Clipper's
/// model registry) keep every recently-published artifact addressable by
/// (name, version) so a bad rollout is a metadata flip away from undone.
/// This registry does the same for LearnedWMP: each `Record` stamps the
/// artifact with a registry-wide monotonically increasing epoch and
/// appends it to the model name's history; `Rollback` pops the current
/// epoch and returns the previous one, which the caller re-publishes into
/// the live ScoringService (see ScoringService::PublishAll). Histories
/// keep the last `keep_last` epochs per name — enough to roll back
/// through a few bad retrains without holding every artifact ever built.
///
/// Registry epochs are *operator-facing* rollout identifiers; they are
/// unrelated to engine::BatchScorer's internal cache-versioning epochs,
/// which keep increasing monotonically even across a rollback (a rolled
/// back model must still invalidate the bad model's cache entries).
///
/// Thread-safety: all methods are safe from any thread (one internal
/// mutex; entries hold shared_ptr snapshots, so a returned model stays
/// alive regardless of later eviction).

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/learned_wmp.h"
#include "util/status.h"

namespace wmp::engine {

struct ModelRegistryOptions {
  /// Epochs retained per model name (>= 2, or Rollback could never work).
  size_t keep_last = 4;
};

/// One published artifact in a name's history.
struct RegistryEntry {
  uint64_t epoch = 0;
  std::shared_ptr<const core::LearnedWmpModel> model;
};

/// \brief Thread-safe name -> epoch history map of published models.
class ModelRegistry {
 public:
  explicit ModelRegistry(ModelRegistryOptions options = {});

  /// Appends `model` (non-null) as the new current epoch of `name`,
  /// trimming the history to `keep_last`. Returns the assigned epoch.
  Result<uint64_t> Record(const std::string& name,
                          std::shared_ptr<const core::LearnedWmpModel> model);

  /// Drops `name`'s current epoch and returns the previous one (which
  /// becomes current). Fails with NotFound for an unknown name and
  /// FailedPrecondition when no earlier epoch is retained.
  Result<RegistryEntry> Rollback(const std::string& name);

  /// Current entry of `name` (NotFound for unknown names).
  Result<RegistryEntry> Current(const std::string& name) const;

  /// Epochs currently retained for `name` (0 for unknown names).
  size_t NumEpochs(const std::string& name) const;

  /// All registered names, unordered.
  std::vector<std::string> Names() const;

  const ModelRegistryOptions& options() const { return options_; }

 private:
  ModelRegistryOptions options_;
  mutable std::mutex mutex_;
  uint64_t next_epoch_ = 1;
  std::unordered_map<std::string, std::vector<RegistryEntry>> histories_;
};

}  // namespace wmp::engine

#endif  // WMP_ENGINE_MODEL_REGISTRY_H_
