#include "engine/template_cache.h"

#include <algorithm>

namespace wmp::engine {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

TemplateIdCache::TemplateIdCache(TemplateIdCacheOptions options)
    : capacity_(options.capacity) {
  const size_t shards = RoundUpPow2(std::max<size_t>(options.num_shards, 1));
  shard_mask_ = shards - 1;
  shards_ = std::make_unique<Shard[]>(shards);
  // Split the budget evenly; round up so small capacities still admit one
  // entry per shard rather than zero.
  per_shard_capacity_ = capacity_ == 0 ? 0 : (capacity_ + shards - 1) / shards;
}

size_t TemplateIdCache::LookupBatch(const uint64_t* keys, size_t n,
                                    uint64_t epoch, int* ids, uint8_t* hit) {
  // One lock acquisition per probe, not per batch: a flush's keys scatter
  // across shards anyway, and holding several shard locks at once from one
  // caller would invite ordering deadlocks for zero payoff.
  size_t hits = 0;
  uint64_t invalidated = 0;
  for (size_t i = 0; i < n; ++i) {
    Shard& shard = ShardFor(keys[i]);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(keys[i]);
    if (it == shard.index.end()) {
      hit[i] = 0;
      continue;
    }
    if (it->second->epoch < epoch) {
      // Assigned under a retired model: never let it shape the new model's
      // histograms. Erase so the slot frees for the re-assign under way.
      shard.lru.erase(it->second);
      shard.index.erase(it);
      ++invalidated;
      size_.fetch_sub(1, std::memory_order_relaxed);
      hit[i] = 0;
      continue;
    }
    if (it->second->epoch > epoch) {
      // The probe is the stale side (an in-flight flush pinned to a
      // retired snapshot): miss without touching the new model's entry.
      hit[i] = 0;
      continue;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ids[i] = it->second->id;
    hit[i] = 1;
    ++hits;
  }
  hits_.fetch_add(hits, std::memory_order_relaxed);
  misses_.fetch_add(n - hits, std::memory_order_relaxed);
  if (invalidated > 0) {
    invalidations_.fetch_add(invalidated, std::memory_order_relaxed);
  }
  return hits;
}

void TemplateIdCache::InsertBatch(const uint64_t* keys, const int* ids,
                                  size_t n, uint64_t epoch) {
  if (per_shard_capacity_ == 0) return;
  uint64_t inserted = 0, evicted = 0;
  for (size_t i = 0; i < n; ++i) {
    Shard& shard = ShardFor(keys[i]);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(keys[i]);
    if (it != shard.index.end()) {
      // Refresh: same fingerprint, same content — bump recency and restamp
      // (a duplicate miss within one flush lands here on its second copy).
      // A stale writer (older epoch than the stored entry) must not
      // clobber what the new model already learned.
      if (it->second->epoch <= epoch) {
        it->second->id = ids[i];
        it->second->epoch = epoch;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      }
      continue;
    }
    shard.lru.push_front(Entry{keys[i], epoch, ids[i]});
    shard.index.emplace(keys[i], shard.lru.begin());
    ++inserted;
    size_.fetch_add(1, std::memory_order_relaxed);
    if (shard.lru.size() > per_shard_capacity_) {
      shard.index.erase(shard.lru.back().key);
      shard.lru.pop_back();
      ++evicted;
      size_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  if (inserted > 0) insertions_.fetch_add(inserted, std::memory_order_relaxed);
  if (evicted > 0) evictions_.fetch_add(evicted, std::memory_order_relaxed);
}

std::vector<uint64_t> TemplateIdCache::ResidentKeys(size_t max_keys) {
  std::vector<uint64_t> keys;
  keys.reserve(std::min(max_keys, size_.load(std::memory_order_relaxed)));
  for (size_t s = 0; s <= shard_mask_ && keys.size() < max_keys; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    for (const Entry& e : shards_[s].lru) {
      if (keys.size() >= max_keys) break;
      keys.push_back(e.key);
    }
  }
  return keys;
}

void TemplateIdCache::Clear() {
  for (size_t s = 0; s <= shard_mask_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    size_.fetch_sub(shards_[s].lru.size(), std::memory_order_relaxed);
    shards_[s].lru.clear();
    shards_[s].index.clear();
  }
}

TemplateIdCacheStats TemplateIdCache::stats() const {
  TemplateIdCacheStats st;
  st.hits = hits_.load(std::memory_order_relaxed);
  st.misses = misses_.load(std::memory_order_relaxed);
  st.insertions = insertions_.load(std::memory_order_relaxed);
  st.evictions = evictions_.load(std::memory_order_relaxed);
  st.invalidations = invalidations_.load(std::memory_order_relaxed);
  st.size = size_.load(std::memory_order_relaxed);
  return st;
}

}  // namespace wmp::engine
