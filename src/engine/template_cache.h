#ifndef WMP_ENGINE_TEMPLATE_CACHE_H_
#define WMP_ENGINE_TEMPLATE_CACHE_H_

/// \file template_cache.h
/// Sharded LRU cache of per-query template ids, keyed by
/// `QueryRecord::content_fingerprint` — the second cache level of the
/// serving path.
///
/// The histogram cache (histogram_cache.h) memoizes *whole workloads*; it
/// only pays off when the exact same query multiset recurs. Production
/// admission streams (the paper's §I deployment; Sibyl's template-repetitive
/// traces) instead repeat *individual* queries endlessly in novel
/// combinations. This cache memoizes the expensive per-query half of IN3 —
/// featurize + scale + nearest-centroid assign — so a workload made of
/// all-known queries builds its histogram from cached template ids without
/// touching the featurizer at all, even when its own fingerprint has never
/// been seen. Memoized ids are exactly the ids `TemplateModel::AssignBatch`
/// would compute, so downstream histograms and predictions are bitwise
/// unchanged by a hit.
///
/// Model versioning mirrors HistogramCache: entries carry the model epoch
/// of the `BatchScorer` snapshot that computed them. After a PublishModel
/// hot-swap, probes under the new epoch treat old entries as misses and
/// erase them lazily — a retired model's assignments can never leak into
/// the new model's histograms. The comparison is directional: an
/// in-flight flush still pinned to the old snapshot misses against newer
/// entries without evicting them, and its inserts never clobber an entry
/// the new model already learned.
///
/// Thread-safety: fully thread-safe (independent lock shards + atomic
/// counters), so dispatchers of different service shards may share one
/// cache over the same model. The `View` adapter binds (cache, epoch) into
/// the `core::TemplateIdResolver` interface the core binning path consumes
/// and additionally tallies per-call hit/miss counts for serving stats.

#include <atomic>
#include <climits>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/template_resolver.h"

namespace wmp::engine {

struct TemplateIdCacheOptions {
  /// Maximum resident entries across all shards; 0 disables insertion
  /// (every probe misses). Entries are ~32 bytes, so the default memoizes
  /// 64k distinct queries in ~2 MB.
  size_t capacity = 1 << 16;
  /// Lock shards (rounded up to a power of two, >= 1).
  size_t num_shards = 8;
};

/// Monotonic counters; `size` is the current resident entry count.
struct TemplateIdCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Entries dropped because their epoch no longer matched a probe's.
  uint64_t invalidations = 0;
  size_t size = 0;
};

/// \brief Thread-safe sharded LRU map: query fingerprint -> template id.
class TemplateIdCache {
 public:
  explicit TemplateIdCache(TemplateIdCacheOptions options = {});

  /// Batched probe: for each `i` in `[0, n)`, on a hit under `epoch`
  /// writes the memoized id into `ids[i]` and sets `hit[i] = 1`, else sets
  /// `hit[i] = 0`. Returns the hit count. Entries stamped with an older
  /// epoch are erased (counted as invalidations + misses); entries from a
  /// newer epoch just miss, untouched.
  size_t LookupBatch(const uint64_t* keys, size_t n, uint64_t epoch, int* ids,
                     uint8_t* hit);

  /// Batched insert (or refresh) of `n` (key, id) pairs stamped with
  /// `epoch`, evicting least-recently-used entries when over budget.
  void InsertBatch(const uint64_t* keys, const int* ids, size_t n,
                   uint64_t epoch);

  /// Drops every entry (stats counters keep accumulating).
  void Clear();

  /// Snapshot of up to `max_keys` resident keys, most-recently-used first
  /// within each shard, regardless of entry epoch. This is the publish-time
  /// cache warmer's working set: entries stamped with the retired epoch are
  /// still resident (invalidation is lazy), and re-assigning exactly these
  /// queries under the new model turns the post-swap miss storm into hits.
  std::vector<uint64_t> ResidentKeys(size_t max_keys = SIZE_MAX);

  TemplateIdCacheStats stats() const;
  size_t capacity() const { return capacity_; }

  /// \brief Per-call resolver view bound to one model epoch.
  ///
  /// The core binning path (`LearnedWmpModel::AssignTemplateIds`) speaks
  /// `core::TemplateIdResolver`; a View pins the epoch of the scoring
  /// call's model snapshot so everything the call resolves and learns is
  /// consistently stamped, and counts that call's own hits/misses (the
  /// cache-wide counters aggregate across concurrent callers).
  class View : public core::TemplateIdResolver {
   public:
    View(TemplateIdCache* cache, uint64_t epoch)
        : cache_(cache), epoch_(epoch) {}

    size_t Resolve(const uint64_t* keys, size_t n, int* ids,
                   uint8_t* hit) override {
      const size_t hits = cache_->LookupBatch(keys, n, epoch_, ids, hit);
      hits_ += hits;
      misses_ += n - hits;
      return hits;
    }
    void Learn(const uint64_t* keys, const int* ids, size_t n) override {
      cache_->InsertBatch(keys, ids, n, epoch_);
    }

    size_t hits() const { return hits_; }
    size_t misses() const { return misses_; }

   private:
    TemplateIdCache* cache_;
    uint64_t epoch_;
    size_t hits_ = 0;
    size_t misses_ = 0;
  };

 private:
  struct Entry {
    uint64_t key;
    uint64_t epoch;
    int id;
  };
  struct Shard {
    std::mutex mutex;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
  };

  Shard& ShardFor(uint64_t key) {
    // Keys are splitmix64-mixed fingerprints; fold the high bits in so
    // shard choice and map bucketing use different bit ranges.
    return shards_[(key ^ (key >> 32)) & shard_mask_];
  }

  size_t capacity_ = 0;
  size_t per_shard_capacity_ = 0;
  size_t shard_mask_ = 0;
  std::unique_ptr<Shard[]> shards_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<size_t> size_{0};
};

}  // namespace wmp::engine

#endif  // WMP_ENGINE_TEMPLATE_CACHE_H_
