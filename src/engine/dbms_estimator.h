#ifndef WMP_ENGINE_DBMS_ESTIMATOR_H_
#define WMP_ENGINE_DBMS_ESTIMATOR_H_

/// \file dbms_estimator.h
/// The state-of-practice baseline: the optimizer's own per-query working
/// memory estimate (SingleWMP-DBMS in the paper).
///
/// Like commercial optimizers it (a) consumes its own — error-prone —
/// cardinality estimates, (b) sums operator-level memory without pipeline
/// analysis, and (c) applies expert-written fudge factors instead of
/// modeling hash/sort overheads and spills. These three simplifications
/// are exactly why the paper's Fig. 5 shows DBMS estimates skewed and wide.

#include "engine/memory_model.h"
#include "plan/plan_node.h"

namespace wmp::engine {

/// Heuristic knobs of the estimator (expert "rules").
struct DbmsEstimatorOptions {
  MemoryModelConfig memory;
  /// Experts size hash tables as `rows * width` — no bucket overhead.
  double hash_fudge = 1.0;
  /// Sorts assumed to run fully in memory up to the heap, no overhead.
  double sort_fudge = 1.0;
  /// Safety factor applied to the final sum (DBAs often pad estimates).
  double safety_factor = 1.1;
};

/// \brief Computes the optimizer's working-memory estimate for one query
/// plan, in MB. Reads only the ESTIMATED cardinality track.
double DbmsEstimateMemoryMb(const plan::PlanNode& root,
                            const DbmsEstimatorOptions& options = {});

}  // namespace wmp::engine

#endif  // WMP_ENGINE_DBMS_ESTIMATOR_H_
