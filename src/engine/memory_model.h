#ifndef WMP_ENGINE_MEMORY_MODEL_H_
#define WMP_ENGINE_MEMORY_MODEL_H_

/// \file memory_model.h
/// Per-operator working-memory formulas.
///
/// The same formulas serve both sides of the experiment:
///  * fed with TRUE cardinalities (+ overheads + spill modeling) they give
///    the simulated ground truth `m`,
///  * fed with ESTIMATED cardinalities (and the cruder heuristic knobs of
///    `DbmsEstimator`) they give the state-of-practice estimate.

#include <cstdint>

#include "plan/plan_node.h"

namespace wmp::engine {

/// Tunable memory-model parameters (defaults model a mid-size OLAP node
/// with per-operator heaps, roughly a Db2 SHEAPTHRES-style configuration).
struct MemoryModelConfig {
  double sort_heap_bytes = 256.0 * 1024 * 1024;   ///< per-sort cap, then spill
  double hash_join_heap_bytes = 512.0 * 1024 * 1024;
  double group_heap_bytes = 384.0 * 1024 * 1024;
  double sort_overhead_factor = 1.15;   ///< tournament-tree + pointer overhead
  double hash_entry_overhead = 24.0;    ///< bucket pointer + hash + latch
  double hash_table_load_factor = 0.75;
  double agg_state_bytes = 16.0;        ///< running aggregate state per group
  double merge_buffer_bytes = 2.0 * 1024 * 1024;  ///< external-sort run buffer
  double scan_buffer_bytes = 256.0 * 1024;        ///< table-scan prefetch
  double index_buffer_bytes = 64.0 * 1024;
  double fetch_buffer_bytes = 128.0 * 1024;
  double nlj_buffer_bytes = 64.0 * 1024;
  double msjoin_buffer_bytes = 512.0 * 1024;
  double filter_buffer_bytes = 16.0 * 1024;
  double executor_base_bytes = 512.0 * 1024;  ///< per-query runtime structures
};

/// \brief Which cardinality track the formulas read.
enum class CardTrack { kEstimated, kTrue };

/// \brief Memory demand of one operator, decomposed into the phase it is
/// *building* (consuming input) and the footprint it keeps *resident* while
/// producing output / being probed.
struct OperatorMemory {
  double build_bytes = 0.0;    ///< held while consuming input
  double resident_bytes = 0.0; ///< held while downstream consumes
  bool spills = false;         ///< exceeded its heap and went external
};

/// \brief Computes the memory demand of `node` under `config`.
///
/// \param track  which cardinality annotations to read. Reading the true
///               track of an unannotated plan falls back to estimates.
OperatorMemory ComputeOperatorMemory(const plan::PlanNode& node,
                                     const MemoryModelConfig& config,
                                     CardTrack track);

/// Cardinality accessors honoring the track fallback.
double NodeInputCard(const plan::PlanNode& node, CardTrack track);
double NodeOutputCard(const plan::PlanNode& node, CardTrack track);

}  // namespace wmp::engine

#endif  // WMP_ENGINE_MEMORY_MODEL_H_
