#include "engine/dbms_estimator.h"

#include <algorithm>

namespace wmp::engine {

namespace {
constexpr double kBytesPerMb = 1024.0 * 1024.0;
}

double DbmsEstimateMemoryMb(const plan::PlanNode& root,
                            const DbmsEstimatorOptions& options) {
  using plan::OperatorType;
  double total = options.memory.executor_base_bytes;
  root.Visit([&](const plan::PlanNode& node) {
    switch (node.op) {
      case OperatorType::kHsJoin: {
        const plan::PlanNode* build =
            node.children.size() > 1 ? node.children[1] : nullptr;
        const double rows = build != nullptr ? build->output_card : 0.0;
        const double width =
            build != nullptr ? build->row_width : node.row_width;
        // Expert rule: hash table ~ raw build bytes, capped at the heap.
        total += std::min(rows * width * options.hash_fudge,
                          options.memory.hash_join_heap_bytes);
        break;
      }
      case OperatorType::kSort: {
        const double bytes = node.input_card * node.row_width;
        total += std::min(bytes * options.sort_fudge,
                          options.memory.sort_heap_bytes);
        break;
      }
      case OperatorType::kGroupBy: {
        if (!node.hash_mode) break;
        // Expert rule: groups * row width, no per-entry overhead.
        total += std::min(node.output_card * node.row_width,
                          options.memory.group_heap_bytes);
        break;
      }
      case OperatorType::kTemp: {
        total += std::min(node.input_card * node.row_width,
                          options.memory.sort_heap_bytes);
        break;
      }
      default:
        break;  // scans and streaming operators billed as negligible
    }
  });
  return total * options.safety_factor / kBytesPerMb;
}

}  // namespace wmp::engine
