#ifndef WMP_ENGINE_FLEET_MAP_H_
#define WMP_ENGINE_FLEET_MAP_H_

/// \file fleet_map.h
/// Fleet-wide epoch bookkeeping for the router tier (net/fleet.h).
///
/// Every predictor node runs its own engine::ModelRegistry, and as long as
/// the SAME sequence of publishes/rollbacks reaches every node, their
/// registry epochs march in lockstep — which is exactly the invariant the
/// two-phase fleet publish exists to preserve. This map records, per node,
/// the epoch last OBSERVED on that node (from health probes and rollout
/// responses) against the fleet-wide TARGET epoch (what the last
/// successful coordinated rollout established), so the router — and its
/// tests — can detect the failure this PR is about: a fleet silently
/// serving mixed epochs because a rollout half-applied, a node restarted,
/// or someone published to one node directly.
///
/// Thread-safety: all methods are safe from any thread (one mutex).

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace wmp::engine {

/// What the fleet knows about one node's rollout state.
struct FleetNodeEpoch {
  uint64_t observed_epoch = 0;  ///< last epoch the node reported (0 = none)
  uint64_t observations = 0;    ///< health/rollout responses folded in
};

/// \brief Per-node observed-epoch map plus the fleet target epoch.
class FleetEpochMap {
 public:
  /// Folds in an epoch report from `node` (a probe or rollout response).
  void Observe(const std::string& node, uint64_t epoch);

  /// Records the epoch a successful coordinated rollout put the fleet on.
  void SetTarget(uint64_t epoch);
  uint64_t target() const;

  /// Last known state of `node` (zero-initialized for unknown nodes).
  FleetNodeEpoch Get(const std::string& node) const;

  /// Nodes whose last observed epoch differs from the target (empty when
  /// no target has been established yet).
  std::vector<std::string> Divergent() const;

  /// True when observed nodes disagree WITH EACH OTHER — the mixed-epoch
  /// fleet no client should ever score against. Independent of target():
  /// a fleet can be consistently behind the target (rollout in flight)
  /// without being mixed.
  bool Mixed() const;

  /// All nodes, ordered by address (stable for tests and status output).
  std::vector<std::pair<std::string, FleetNodeEpoch>> Snapshot() const;

 private:
  mutable std::mutex mutex_;
  uint64_t target_ = 0;
  std::map<std::string, FleetNodeEpoch> nodes_;
};

}  // namespace wmp::engine

#endif  // WMP_ENGINE_FLEET_MAP_H_
