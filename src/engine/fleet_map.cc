#include "engine/fleet_map.h"

namespace wmp::engine {

void FleetEpochMap::Observe(const std::string& node, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  FleetNodeEpoch& entry = nodes_[node];
  entry.observed_epoch = epoch;
  entry.observations++;
}

void FleetEpochMap::SetTarget(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  target_ = epoch;
}

uint64_t FleetEpochMap::target() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return target_;
}

FleetNodeEpoch FleetEpochMap::Get(const std::string& node) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = nodes_.find(node);
  return it == nodes_.end() ? FleetNodeEpoch{} : it->second;
}

std::vector<std::string> FleetEpochMap::Divergent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> divergent;
  if (target_ == 0) return divergent;
  for (const auto& [node, entry] : nodes_) {
    if (entry.observed_epoch != target_) divergent.push_back(node);
  }
  return divergent;
}

bool FleetEpochMap::Mixed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  bool any = false;
  uint64_t seen = 0;
  for (const auto& [node, entry] : nodes_) {
    if (entry.observations == 0) continue;  // never heard from — unknown
    if (!any) {
      any = true;
      seen = entry.observed_epoch;
    } else if (entry.observed_epoch != seen) {
      return true;
    }
  }
  return false;
}

std::vector<std::pair<std::string, FleetNodeEpoch>> FleetEpochMap::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {nodes_.begin(), nodes_.end()};
}

}  // namespace wmp::engine
