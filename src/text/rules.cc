#include "text/rules.h"

#include <algorithm>

namespace wmp::text {

bool RuleBasedClassifier::Matches(const TemplateRule& rule,
                                  const sql::Query& query) {
  for (const std::string& table : rule.required_tables) {
    const bool present =
        std::any_of(query.from.begin(), query.from.end(),
                    [&](const sql::TableRef& ref) { return ref.table == table; });
    if (!present) return false;
  }
  const int joins = static_cast<int>(query.JoinPredicates().size());
  if (rule.min_joins >= 0 && joins < rule.min_joins) return false;
  if (rule.max_joins >= 0 && joins > rule.max_joins) return false;
  if (rule.requires_aggregation.has_value()) {
    const bool has = query.HasAggregation() || !query.group_by.empty();
    if (has != *rule.requires_aggregation) return false;
  }
  if (rule.requires_order_by.has_value()) {
    if (query.order_by.empty() == *rule.requires_order_by) return false;
  }
  return true;
}

int RuleBasedClassifier::Classify(const sql::Query& query) const {
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (Matches(rules_[i], query)) return static_cast<int>(i);
  }
  return static_cast<int>(rules_.size());  // catch-all
}

}  // namespace wmp::text
