#ifndef WMP_TEXT_EMBEDDINGS_H_
#define WMP_TEXT_EMBEDDINGS_H_

/// \file embeddings.h
/// Word embeddings for SQL tokens — Fig. 9's "Word embeddings based"
/// template-learning method.
///
/// Embeddings are trained count-based: a windowed word-word co-occurrence
/// matrix over the corpus, re-weighted with positive pointwise mutual
/// information (PPMI), then factorized with truncated SVD (power iteration
/// with deflation on the symmetric PPMI matrix). A query's feature vector
/// is the mean of its tokens' embeddings, which captures keyword proximity
/// — the property the paper credits embeddings with over plain
/// bag-of-words.

#include <map>
#include <string>
#include <vector>

#include "ml/linalg.h"
#include "util/status.h"

namespace wmp::text {

/// Training knobs.
struct EmbeddingOptions {
  size_t max_vocab = 512;
  int dim = 16;          ///< embedding dimension
  int window = 2;        ///< co-occurrence window (tokens on each side)
  int power_iters = 30;  ///< power-iteration steps per component
  uint64_t seed = 42;
};

/// \brief PPMI + truncated-SVD word embeddings.
class WordEmbeddings {
 public:
  WordEmbeddings() = default;

  /// Trains embeddings on a corpus of SQL strings.
  Status Fit(const std::vector<std::string>& corpus,
             const EmbeddingOptions& options = {});

  /// Mean token embedding of `sql` (zero vector if no token is known).
  Result<std::vector<double>> Transform(const std::string& sql) const;

  /// Embedding of one word; NotFound if out of vocabulary.
  Result<std::vector<double>> WordVector(const std::string& word) const;

  /// Cosine similarity of two in-vocabulary words.
  Result<double> Similarity(const std::string& a, const std::string& b) const;

  int dim() const { return options_.dim; }
  size_t vocab_size() const { return vocab_.size(); }
  bool fitted() const { return vectors_.rows() > 0; }

 private:
  EmbeddingOptions options_;
  std::map<std::string, int> vocab_;
  ml::Matrix vectors_;  // vocab_size x dim
};

}  // namespace wmp::text

#endif  // WMP_TEXT_EMBEDDINGS_H_
