#include "text/text_mining.h"

#include "text/tokenizer.h"
#include "util/strings.h"

namespace wmp::text {

const std::vector<std::string>& SchemaAwareVectorizer::ClauseKeywords() {
  static const std::vector<std::string> kKeywords = {
      "select", "from",  "where", "group", "order",    "by",
      "limit",  "count", "sum",   "avg",   "min",      "max",
      "between", "in",   "like",  "and",   "distinct",
  };
  return kKeywords;
}

Status SchemaAwareVectorizer::Fit(const catalog::Catalog& catalog) {
  if (catalog.num_tables() == 0) {
    return Status::InvalidArgument("SchemaAwareVectorizer: empty catalog");
  }
  vocab_.clear();
  int index = 0;
  auto add = [&](const std::string& word) {
    vocab_.emplace(ToLower(word), index);
    if (vocab_.size() == static_cast<size_t>(index) + 1) ++index;
  };
  for (const std::string& kw : ClauseKeywords()) add(kw);
  for (const std::string& tname : catalog.table_names()) {
    add(tname);
    const catalog::TableDef* table = *catalog.FindTable(tname);
    for (const catalog::Column& col : table->columns()) add(col.name());
  }
  return Status::OK();
}

Result<std::vector<double>> SchemaAwareVectorizer::Transform(
    const std::string& sql) const {
  if (!fitted()) return Status::FailedPrecondition("vectorizer not fitted");
  std::vector<double> vec(vocab_.size(), 0.0);
  for (const std::string& tok : TokenizeSql(sql)) {
    auto it = vocab_.find(tok);
    if (it != vocab_.end()) vec[static_cast<size_t>(it->second)] += 1.0;
  }
  return vec;
}

}  // namespace wmp::text
