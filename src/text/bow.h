#ifndef WMP_TEXT_BOW_H_
#define WMP_TEXT_BOW_H_

/// \file bow.h
/// Bag-of-words featurization of SQL text — the "Bag of Words based"
/// template-learning alternative of Fig. 9. The vocabulary is built
/// indiscriminately from the training corpus (most frequent words kept);
/// each query becomes a vector of per-word counts.

#include <map>
#include <string>
#include <vector>

#include "text/tokenizer.h"
#include "util/status.h"

namespace wmp::text {

/// Vocabulary/featurization knobs.
struct BowOptions {
  size_t max_vocab = 512;  ///< keep the most frequent words
  TokenizerOptions tokenizer;
};

/// \brief Count-vectorizer over a learned vocabulary.
class BowVectorizer {
 public:
  BowVectorizer() = default;

  /// Builds the vocabulary from a corpus of SQL strings.
  Status Fit(const std::vector<std::string>& corpus,
             const BowOptions& options = {});

  /// Per-word count vector of `sql`; out-of-vocabulary tokens are dropped.
  Result<std::vector<double>> Transform(const std::string& sql) const;

  size_t vocab_size() const { return vocab_.size(); }
  /// Index of `word` in the feature vector; -1 if out of vocabulary.
  int WordIndex(const std::string& word) const;
  bool fitted() const { return !vocab_.empty(); }

 protected:
  BowOptions options_;
  std::map<std::string, int> vocab_;  // word -> feature index
};

}  // namespace wmp::text

#endif  // WMP_TEXT_BOW_H_
