#ifndef WMP_TEXT_TEXT_MINING_H_
#define WMP_TEXT_TEXT_MINING_H_

/// \file text_mining.h
/// Schema-aware text featurization — Fig. 9's "Text mining based" method.
/// Unlike bag-of-words, the vocabulary is restricted to tokens that carry
/// database meaning: table names, column names (from the catalog), and SQL
/// clause keywords. Everything else is ignored.

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "text/bow.h"

namespace wmp::text {

/// \brief Count-vectorizer whose vocabulary is derived from the catalog
/// plus SQL clause keywords, not mined from the corpus.
class SchemaAwareVectorizer {
 public:
  SchemaAwareVectorizer() = default;

  /// Builds the vocabulary from the catalog (tables + columns) and the
  /// fixed SQL clause keyword list.
  Status Fit(const catalog::Catalog& catalog);

  /// Count vector over the schema vocabulary.
  Result<std::vector<double>> Transform(const std::string& sql) const;

  size_t vocab_size() const { return vocab_.size(); }
  bool fitted() const { return !vocab_.empty(); }

  /// Clause keywords included in every vocabulary.
  static const std::vector<std::string>& ClauseKeywords();

 private:
  std::map<std::string, int> vocab_;
};

}  // namespace wmp::text

#endif  // WMP_TEXT_TEXT_MINING_H_
