#ifndef WMP_TEXT_RULES_H_
#define WMP_TEXT_RULES_H_

/// \file rules.h
/// Rule-based template assignment — Fig. 9's "Rule based" method.
///
/// Each rule is the kind of fingerprint a DBA would write: "queries that
/// touch these tables, with/without aggregation, with this many joins,
/// belong to template X". Rules are evaluated in order; the first match
/// wins; queries matching nothing land in a catch-all template. Workload
/// generators export one expert rule per query family, playing the role of
/// the subject-matter expert the paper mentions.

#include <optional>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "util/status.h"

namespace wmp::text {

/// \brief One expert rule.
struct TemplateRule {
  std::string name;
  /// Tables that must all appear in the FROM clause (by real table name).
  std::vector<std::string> required_tables;
  /// Join-count bounds (inclusive); -1 = unbounded.
  int min_joins = -1;
  int max_joins = -1;
  /// Constraint on GROUP BY / aggregation presence (unset = don't care).
  std::optional<bool> requires_aggregation;
  std::optional<bool> requires_order_by;
};

/// \brief Ordered rule list classifying queries into templates.
class RuleBasedClassifier {
 public:
  RuleBasedClassifier() = default;
  explicit RuleBasedClassifier(std::vector<TemplateRule> rules)
      : rules_(std::move(rules)) {}

  /// Template id of `query`: index of the first matching rule, or
  /// `rules().size()` (the catch-all bucket) when nothing matches.
  int Classify(const sql::Query& query) const;

  /// Total number of templates including the catch-all bucket.
  int num_templates() const { return static_cast<int>(rules_.size()) + 1; }
  const std::vector<TemplateRule>& rules() const { return rules_; }

  /// True when `query` satisfies `rule`.
  static bool Matches(const TemplateRule& rule, const sql::Query& query);

 private:
  std::vector<TemplateRule> rules_;
};

}  // namespace wmp::text

#endif  // WMP_TEXT_RULES_H_
