#ifndef WMP_TEXT_TOKENIZER_H_
#define WMP_TEXT_TOKENIZER_H_

/// \file tokenizer.h
/// SQL-text tokenization for the text-based template learners (Fig. 9's
/// bag-of-words, text-mining, and word-embedding methods).

#include <string>
#include <vector>

namespace wmp::text {

/// Tokenization knobs.
struct TokenizerOptions {
  /// Replace numeric literals with the placeholder token "#num" (keeps the
  /// vocabulary independent of constants).
  bool fold_numbers = true;
  /// Replace quoted string literals with "#str".
  bool fold_strings = true;
};

/// \brief Lower-cases and splits SQL text into word tokens; punctuation is
/// dropped, literals optionally folded into placeholder tokens.
std::vector<std::string> TokenizeSql(const std::string& sql,
                                     const TokenizerOptions& options = {});

}  // namespace wmp::text

#endif  // WMP_TEXT_TOKENIZER_H_
