#include "text/bow.h"

#include <algorithm>

namespace wmp::text {

Status BowVectorizer::Fit(const std::vector<std::string>& corpus,
                          const BowOptions& options) {
  if (corpus.empty()) {
    return Status::InvalidArgument("BowVectorizer::Fit on empty corpus");
  }
  options_ = options;
  std::map<std::string, size_t> counts;
  for (const std::string& sql : corpus) {
    for (const std::string& tok : TokenizeSql(sql, options.tokenizer)) {
      ++counts[tok];
    }
  }
  // Keep the most frequent words (ties broken alphabetically for
  // determinism).
  std::vector<std::pair<std::string, size_t>> by_freq(counts.begin(),
                                                      counts.end());
  std::sort(by_freq.begin(), by_freq.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (by_freq.size() > options.max_vocab) by_freq.resize(options.max_vocab);
  std::sort(by_freq.begin(), by_freq.end());  // stable feature order
  vocab_.clear();
  int index = 0;
  for (const auto& [word, freq] : by_freq) vocab_.emplace(word, index++);
  return Status::OK();
}

Result<std::vector<double>> BowVectorizer::Transform(
    const std::string& sql) const {
  if (!fitted()) return Status::FailedPrecondition("vectorizer not fitted");
  std::vector<double> vec(vocab_.size(), 0.0);
  for (const std::string& tok : TokenizeSql(sql, options_.tokenizer)) {
    auto it = vocab_.find(tok);
    if (it != vocab_.end()) vec[static_cast<size_t>(it->second)] += 1.0;
  }
  return vec;
}

int BowVectorizer::WordIndex(const std::string& word) const {
  auto it = vocab_.find(word);
  return it == vocab_.end() ? -1 : it->second;
}

}  // namespace wmp::text
