#include "text/embeddings.h"

#include <algorithm>
#include <cmath>

#include "text/tokenizer.h"
#include "util/random.h"

namespace wmp::text {

Status WordEmbeddings::Fit(const std::vector<std::string>& corpus,
                           const EmbeddingOptions& options) {
  if (corpus.empty()) {
    return Status::InvalidArgument("WordEmbeddings::Fit on empty corpus");
  }
  if (options.dim < 1 || options.window < 1) {
    return Status::InvalidArgument("dim and window must be >= 1");
  }
  options_ = options;

  // --- Vocabulary: most frequent tokens ------------------------------------
  std::map<std::string, size_t> counts;
  std::vector<std::vector<std::string>> tokenized;
  tokenized.reserve(corpus.size());
  for (const std::string& sql : corpus) {
    tokenized.push_back(TokenizeSql(sql));
    for (const std::string& tok : tokenized.back()) ++counts[tok];
  }
  std::vector<std::pair<std::string, size_t>> by_freq(counts.begin(),
                                                      counts.end());
  std::sort(by_freq.begin(), by_freq.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (by_freq.size() > options.max_vocab) by_freq.resize(options.max_vocab);
  vocab_.clear();
  int index = 0;
  for (const auto& [word, freq] : by_freq) vocab_.emplace(word, index++);
  const size_t v = vocab_.size();

  // --- Windowed co-occurrence ----------------------------------------------
  ml::Matrix cooc(v, v);
  for (const auto& tokens : tokenized) {
    for (size_t i = 0; i < tokens.size(); ++i) {
      auto it_i = vocab_.find(tokens[i]);
      if (it_i == vocab_.end()) continue;
      const size_t wi = static_cast<size_t>(it_i->second);
      const size_t end = std::min(tokens.size(),
                                  i + static_cast<size_t>(options.window) + 1);
      for (size_t j = i + 1; j < end; ++j) {
        auto it_j = vocab_.find(tokens[j]);
        if (it_j == vocab_.end()) continue;
        const size_t wj = static_cast<size_t>(it_j->second);
        cooc.At(wi, wj) += 1.0;
        cooc.At(wj, wi) += 1.0;
      }
    }
  }

  // --- PPMI re-weighting -----------------------------------------------------
  double total = 0.0;
  std::vector<double> row_sum(v, 0.0);
  for (size_t i = 0; i < v; ++i) {
    for (size_t j = 0; j < v; ++j) row_sum[i] += cooc.At(i, j);
    total += row_sum[i];
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("corpus produced no co-occurrences");
  }
  ml::Matrix ppmi(v, v);
  for (size_t i = 0; i < v; ++i) {
    for (size_t j = 0; j < v; ++j) {
      const double c = cooc.At(i, j);
      if (c <= 0.0 || row_sum[i] <= 0.0 || row_sum[j] <= 0.0) continue;
      const double pmi =
          std::log((c * total) / (row_sum[i] * row_sum[j]));
      if (pmi > 0.0) ppmi.At(i, j) = pmi;
    }
  }

  // --- Truncated eigendecomposition (power iteration + deflation) ----------
  // PPMI is symmetric, so its dominant eigenvectors give the SVD factors.
  const int dim = std::min<int>(options.dim, static_cast<int>(v));
  options_.dim = dim;
  ml::Matrix components(static_cast<size_t>(dim), v);
  std::vector<double> eigenvalues(static_cast<size_t>(dim), 0.0);
  Rng rng(options.seed);
  for (int d = 0; d < dim; ++d) {
    std::vector<double> vec(v);
    for (double& x : vec) x = rng.Normal();
    double eig = 0.0;
    for (int it = 0; it < options.power_iters; ++it) {
      std::vector<double> next = ml::MatVec(ppmi, vec);
      // Deflate previously found components.
      for (int p = 0; p < d; ++p) {
        const double* comp = components.RowPtr(static_cast<size_t>(p));
        double proj = 0.0;
        for (size_t i = 0; i < v; ++i) proj += comp[i] * next[i];
        for (size_t i = 0; i < v; ++i) next[i] -= proj * comp[i];
      }
      const double norm = ml::Norm2(next);
      if (norm < 1e-12) break;
      for (double& x : next) x /= norm;
      eig = ml::Dot(next, ml::MatVec(ppmi, next));
      vec = std::move(next);
    }
    std::copy(vec.begin(), vec.end(),
              components.RowPtr(static_cast<size_t>(d)));
    eigenvalues[static_cast<size_t>(d)] = eig;
  }

  // Word vectors: eigenvector entries scaled by sqrt(|eigenvalue|).
  vectors_ = ml::Matrix(v, static_cast<size_t>(dim));
  for (size_t w = 0; w < v; ++w) {
    for (int d = 0; d < dim; ++d) {
      const double scale =
          std::sqrt(std::max(eigenvalues[static_cast<size_t>(d)], 0.0));
      vectors_.At(w, static_cast<size_t>(d)) =
          components.At(static_cast<size_t>(d), w) * scale;
    }
  }
  return Status::OK();
}

Result<std::vector<double>> WordEmbeddings::Transform(
    const std::string& sql) const {
  if (!fitted()) return Status::FailedPrecondition("embeddings not fitted");
  std::vector<double> mean(static_cast<size_t>(options_.dim), 0.0);
  size_t hits = 0;
  for (const std::string& tok : TokenizeSql(sql)) {
    auto it = vocab_.find(tok);
    if (it == vocab_.end()) continue;
    const double* row = vectors_.RowPtr(static_cast<size_t>(it->second));
    for (size_t d = 0; d < mean.size(); ++d) mean[d] += row[d];
    ++hits;
  }
  if (hits > 0) {
    for (double& x : mean) x /= static_cast<double>(hits);
  }
  return mean;
}

Result<std::vector<double>> WordEmbeddings::WordVector(
    const std::string& word) const {
  if (!fitted()) return Status::FailedPrecondition("embeddings not fitted");
  auto it = vocab_.find(word);
  if (it == vocab_.end()) return Status::NotFound("word not in vocabulary: " + word);
  return vectors_.RowVec(static_cast<size_t>(it->second));
}

Result<double> WordEmbeddings::Similarity(const std::string& a,
                                          const std::string& b) const {
  WMP_ASSIGN_OR_RETURN(std::vector<double> va, WordVector(a));
  WMP_ASSIGN_OR_RETURN(std::vector<double> vb, WordVector(b));
  const double na = ml::Norm2(va), nb = ml::Norm2(vb);
  if (na < 1e-12 || nb < 1e-12) return 0.0;
  return ml::Dot(va, vb) / (na * nb);
}

}  // namespace wmp::text
