#include "text/tokenizer.h"

#include <cctype>

namespace wmp::text {

std::vector<std::string> TokenizeSql(const std::string& sql,
                                     const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const unsigned char c = static_cast<unsigned char>(sql[i]);
    if (std::isalpha(c) || c == '_') {
      std::string word;
      while (i < n) {
        const unsigned char d = static_cast<unsigned char>(sql[i]);
        if (!std::isalnum(d) && d != '_') break;
        word.push_back(static_cast<char>(std::tolower(d)));
        ++i;
      }
      tokens.push_back(std::move(word));
      continue;
    }
    if (std::isdigit(c)) {
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.')) {
        ++i;
      }
      if (options.fold_numbers) {
        tokens.push_back("#num");
      }  // else dropped: raw constants are meaningless vocabulary
      continue;
    }
    if (c == '\'') {
      ++i;
      while (i < n && sql[i] != '\'') ++i;
      if (i < n) ++i;  // closing quote
      if (options.fold_strings) tokens.push_back("#str");
      continue;
    }
    ++i;  // punctuation/whitespace
  }
  return tokens;
}

}  // namespace wmp::text
