// wmpctl — command-line front end for the LearnedWMP library.
//
// The operational workflow of the paper's "DBMS Integration" section as a
// tool:
//
//   wmpctl generate --benchmark=tpcc --queries=2000 --out=log.txt
//       Fabricate a query log (SQL + EXPLAIN + observed memory) with one
//       of the built-in benchmark simulators. A real deployment replaces
//       this step with a dump from its DBMS in the same text format.
//
//   wmpctl train --log=log.txt --model=model.wmp [--templates=K] [--batch=S]
//       Train a LearnedWMP model from a query log and persist it. With
//       --publish, additionally rehearse the production rollout: stand up
//       the async scoring service on the PREVIOUS artifact at --model (if
//       one exists), drive live traffic against it, hot-swap the freshly
//       trained model in mid-stream (ScoringService::PublishModel), and
//       verify zero failed requests plus bitwise agreement of post-swap
//       predictions with the new model.
//
//   wmpctl evaluate --log=log.txt --model=model.wmp [--batch=S]
//       Score a model against a labeled log (RMSE / MAPE over workloads).
//
//   wmpctl predict --log=workload.txt --model=model.wmp
//       Treat the whole log file as one workload and predict its memory.
//
//   wmpctl serve-bench --log=log.txt --model=model.wmp [--clients=8]
//                      [--shards=1] [--batch=S] [--repeat=3] [--adaptive=1]
//       Drive N concurrent client threads against the async scoring
//       service (engine::ScoringService): each client submits every
//       workload of the log `repeat` times, so the second pass onward
//       exercises the caches. Reports throughput, latency, per-level
//       cache hit rates (histogram vs template-id), and the flush-reason
//       breakdown of the adaptive micro-batching controller.
//
//   wmpctl serve --listen=ADDR --model=model.wmp [--name=default]
//                [--shards=N] [--warm-log=log.txt]
//       Stand up the out-of-process scoring server (net::WireServer over
//       ScoringService + ModelRegistry) on "unix:/path.sock" or
//       "host:port". Runs until SIGINT/SIGTERM, then drains and prints
//       the serving stats. --warm-log registers a corpus so every
//       publish re-warms the template cache in the background.
//
//   wmpctl score --log=log.txt (--connect=ADDR | --model=model.wmp)
//                [--batch=S] [--chunk=4096] [--tenant=NAME]
//       Score a log against a remote server (or a local model) in
//       fixed-size chunks: the log streams through workloads::
//       QueryLogReader, so the resident set stays capped at ~one chunk
//       no matter how large the log is.
//
//   wmpctl rollback --connect=ADDR [--name=default]
//       Revert the server's named model to the previous registry epoch.

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/featurizer.h"
#include "core/learned_wmp.h"
#include "core/single_wmp.h"
#include "engine/batch_scorer.h"
#include "engine/model_registry.h"
#include "engine/scoring_service.h"
#include "ml/compiled_tree.h"
#include "ml/metrics.h"
#include "net/async_client.h"
#include "net/fleet.h"
#include "net/reactor_server.h"
#include "net/wire_client.h"
#include "net/wire_server.h"
#include "plan/explain.h"
#include "plan/features.h"
#include "plan/plan_parser.h"
#include "sql/parser.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/sync.h"
#include "util/timer.h"
#include "workloads/dataset.h"
#include "workloads/log_io.h"

using namespace wmp;

namespace {

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--", 2) != 0) continue;
    const char* eq = std::strchr(a, '=');
    if (eq == nullptr) {
      flags[a + 2] = "1";
    } else {
      flags[std::string(a + 2, eq)] = eq + 1;
    }
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  wmpctl generate --benchmark=tpcds|job|tpcc --queries=N "
               "--out=PATH [--seed=N]\n"
               "  wmpctl train    --log=PATH --model=PATH [--templates=K] "
               "[--batch=S] [--seed=N] [--publish]\n"
               "  wmpctl evaluate --log=PATH --model=PATH [--batch=S]\n"
               "  wmpctl predict  --log=PATH --model=PATH\n"
               "  wmpctl serve-bench --log=PATH --model=PATH [--clients=8] "
               "[--shards=1]\n"
               "                 [--batch=S] [--repeat=3] [--max-batch=64] "
               "[--max-delay-us=200]\n"
               "                 [--adaptive=1] [--template-cache=65536] "
               "[--cache=4096]\n"
               "  wmpctl serve    --listen=ADDR --model=PATH "
               "[--name=default] [--shards=N]\n"
               "                 [--warm-log=PATH] [--max-batch=64] "
               "[--max-delay-us=200] [--reactor]\n"
               "  wmpctl score    --log=PATH (--connect=ADDR | "
               "--model=PATH) [--batch=S]\n"
               "                 [--chunk=4096] [--tenant=NAME] "
               "[--pipeline[=N]]\n"
               "  wmpctl rollback --connect=ADDR [--name=default]\n"
               "  wmpctl fleet status|score|publish|rollback "
               "--nodes=ADDR,ADDR,...\n"
               "                 [--log=PATH] [--model=PATH] "
               "[--name=default] [--batch=S]\n"
               "                 [--tenant=NAME] [--chunk=4096] "
               "[--attempts=4] [--seed=1]\n"
               "                 [--probe-interval-ms=200] "
               "[--request-timeout-ms=2000]\n"
               "ADDR is unix:/path.sock or host:port; --publish accepts "
               "--connect=ADDR\n"
               "to roll out over the wire instead of rehearsing "
               "in-process.\n"
               "common: --threads=N caps the worker pool (0 = all cores)\n");
  return 2;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

// Cold-path phase split over a sample of loaded records: what one
// template-cache miss costs per query, phase by phase. Parse re-parses the
// SQL text; plan reconstructs the tree from its EXPLAIN rendering (the log
// ingestion path — wmpctl has no catalog to re-plan against); featurize
// walks the plan tree; assign runs the model's fused featurize -> scale ->
// centroid-assign batch (pruned index). Returns "" when the sample can't
// be measured (no plans, parse failure, no local model for assign).
std::string ColdPhaseSplitLine(
    const std::vector<workloads::QueryRecord>& records,
    const core::LearnedWmpModel* model) {
  const size_t n = std::min<size_t>(records.size(), 512);
  if (n == 0) return "";
  for (size_t i = 0; i < n; ++i) {
    if (records[i].plan == nullptr) return "";
  }
  std::vector<std::string> explains(n);
  for (size_t i = 0; i < n; ++i) {
    explains[i] = plan::Explain(*records[i].plan);
  }
  const double dn = static_cast<double>(n);
  Stopwatch sw;
  for (size_t i = 0; i < n; ++i) {
    if (!sql::Parse(records[i].sql_text).ok()) return "";
  }
  const double parse_us = sw.ElapsedMicros() / dn;
  sw.Reset();
  for (size_t i = 0; i < n; ++i) {
    if (!plan::ParseExplain(explains[i]).ok()) return "";
  }
  const double plan_us = sw.ElapsedMicros() / dn;
  sw.Reset();
  for (size_t i = 0; i < n; ++i) {
    plan::ExtractPlanFeatures(*records[i].plan);
  }
  const double feat_us = sw.ElapsedMicros() / dn;
  std::string assign = "n/a (remote model)";
  if (model != nullptr && model->templates().featurizer() != nullptr) {
    std::vector<uint32_t> indices(n);
    for (size_t i = 0; i < n; ++i) indices[i] = static_cast<uint32_t>(i);
    sw.Reset();
    if (!model->templates().AssignBatch(records, indices).ok()) return "";
    assign = StrFormat("%.1f", sw.ElapsedMicros() / dn);
  }
  return StrFormat(
      "cold path per query (sample of %zu): parse %.1f us, plan %.1f us, "
      "featurize %.1f us, assign %s us",
      n, parse_us, plan_us, feat_us, assign.c_str());
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  const std::string name = FlagOr(flags, "benchmark", "tpcc");
  workloads::Benchmark benchmark;
  if (name == "tpcds") {
    benchmark = workloads::Benchmark::kTpcds;
  } else if (name == "job") {
    benchmark = workloads::Benchmark::kJob;
  } else if (name == "tpcc") {
    benchmark = workloads::Benchmark::kTpcc;
  } else {
    std::fprintf(stderr, "unknown benchmark: %s\n", name.c_str());
    return 2;
  }
  const std::string out = FlagOr(flags, "out", "");
  if (out.empty()) return Usage();

  workloads::DatasetOptions opt;
  opt.num_queries =
      static_cast<size_t>(std::atoll(FlagOr(flags, "queries", "1000").c_str()));
  opt.seed = std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  auto dataset = workloads::BuildDataset(benchmark, opt);
  if (!dataset.ok()) return Fail(dataset.status());
  if (Status st = workloads::WriteQueryLog(dataset->records, out); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %zu %s queries to %s\n", dataset->records.size(),
              dataset->benchmark_name.c_str(), out.c_str());
  return 0;
}

// The --publish rollout rehearsal: serve `live` (the previous artifact,
// or the fresh model itself on a first train), hot-swap `fresh` in under
// closed-loop traffic, and verify the swap lost nothing — zero failed
// requests and post-swap predictions bitwise equal to the fresh model's
// own batched scoring.
int RunPublishRehearsal(const std::vector<workloads::QueryRecord>& records,
                        std::shared_ptr<const core::LearnedWmpModel> live,
                        std::shared_ptr<const core::LearnedWmpModel> fresh,
                        int batch_size) {
  const auto batches =
      engine::MakeConsecutiveBatches(records.size(), batch_size);
  if (batches.empty()) {
    std::fprintf(stderr, "log too small for one workload of %d queries\n",
                 batch_size);
    return 1;
  }
  engine::ScoringService service({std::move(live)});
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> done{0};
  constexpr int kPasses = 4;
  std::thread driver([&] {
    for (int pass = 0; pass < kPasses; ++pass) {
      for (const auto& b : batches) {
        auto got = service.Submit("rollout", records, b.query_indices).get();
        if (!got.ok()) errors.fetch_add(1, std::memory_order_relaxed);
        done.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  // Swap once the stream is demonstrably live (mid-first-pass).
  while (done.load(std::memory_order_relaxed) < batches.size() / 2 + 1) {
    std::this_thread::yield();
  }
  if (Status st = service.PublishModel(0, fresh); !st.ok()) {
    driver.join();
    return Fail(st);
  }
  driver.join();

  // Post-swap steady state must be the fresh model, bitwise.
  engine::BatchScorer reference(fresh);
  auto want = reference.ScoreWorkloads(records, batches);
  if (!want.ok()) return Fail(want.status());
  size_t mismatches = 0;
  for (size_t w = 0; w < batches.size(); ++w) {
    auto got =
        service.Submit("rollout", records, batches[w].query_indices).get();
    if (!got.ok()) {
      errors.fetch_add(1, std::memory_order_relaxed);
    } else if (*got != want->predictions[w]) {
      ++mismatches;
    }
  }
  service.Stop();
  const engine::ServiceStats st = service.stats();
  std::printf(
      "publish rehearsal: %llu requests across the swap, %llu failed, "
      "%zu post-swap mismatches\n",
      static_cast<unsigned long long>(st.completed + st.failed),
      static_cast<unsigned long long>(errors.load()), mismatches);
  std::printf("  hot-swap %s: live traffic kept flowing and the service "
              "now serves the fresh model bitwise\n",
              errors.load() == 0 && mismatches == 0 ? "OK" : "FAILED");
  return errors.load() == 0 && mismatches == 0 ? 0 : 1;
}

// The --publish --connect rollout: push the freshly-trained artifact to a
// running `wmpctl serve` over the wire (PublishAll across every shard +
// registry recording), then verify the swap took by scoring the training
// log remotely and comparing bitwise against the fresh model's own local
// batched scoring.
int RunRemotePublish(const std::string& address, const std::string& name,
                     const std::vector<workloads::QueryRecord>& records,
                     const core::LearnedWmpModel& fresh, int batch_size) {
  net::WireClient client(address);
  auto epoch = client.Publish(name, fresh);
  if (!epoch.ok()) return Fail(epoch.status());
  std::printf("published '%s' to %s (registry epoch %llu)\n", name.c_str(),
              address.c_str(), static_cast<unsigned long long>(*epoch));

  const auto batches =
      engine::MakeConsecutiveBatches(records.size(), batch_size);
  if (batches.empty()) {
    std::fprintf(stderr, "log too small for one workload of %d queries\n",
                 batch_size);
    return 1;
  }
  engine::BatchScorer reference(&fresh);
  auto want = reference.ScoreWorkloads(records, batches);
  if (!want.ok()) return Fail(want.status());
  auto got = client.ScoreWorkloads("rollout-verify", records, batches);
  if (!got.ok()) return Fail(got.status());
  size_t failed = 0, mismatches = 0;
  for (size_t w = 0; w < batches.size(); ++w) {
    if (!(*got)[w].ok()) {
      ++failed;
    } else if (*(*got)[w] != want->predictions[w]) {
      ++mismatches;
    }
  }
  std::printf("post-swap verification: %zu workloads scored remotely, "
              "%zu failed, %zu mismatches\n",
              batches.size(), failed, mismatches);
  std::printf("  cross-process rollout %s: the server now serves the fresh "
              "model bitwise\n",
              failed == 0 && mismatches == 0 ? "OK" : "FAILED");
  return failed == 0 && mismatches == 0 ? 0 : 1;
}

int CmdTrain(const std::map<std::string, std::string>& flags) {
  const std::string log_path = FlagOr(flags, "log", "");
  const std::string model_path = FlagOr(flags, "model", "");
  if (log_path.empty() || model_path.empty()) return Usage();

  auto records = workloads::LoadQueryLog(log_path);
  if (!records.ok()) return Fail(records.status());

  // For --publish, pick up the previous artifact BEFORE it is overwritten:
  // the rehearsal swaps old -> new exactly like a production rollout.
  const bool publish = flags.count("publish") > 0;
  std::shared_ptr<const core::LearnedWmpModel> previous;
  if (publish) {
    if (auto old = core::LearnedWmpModel::LoadFromFile(model_path); old.ok()) {
      previous =
          std::make_shared<const core::LearnedWmpModel>(std::move(*old));
    }
  }

  core::LearnedWmpOptions opt;
  opt.templates.num_templates =
      std::atoi(FlagOr(flags, "templates", "0").c_str());
  opt.batch_size = std::atoi(FlagOr(flags, "batch", "10").c_str());
  opt.seed = std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  const auto indices = core::AllIndices(records->size());
  if (opt.templates.num_templates <= 0) {
    // Elbow-tune k over a standard candidate grid.
    std::vector<int> ks;
    for (int k = 10; k <= 100; k += 10) ks.push_back(k);
    auto chosen = core::ChooseNumTemplates(*records, indices, ks, opt.seed);
    if (!chosen.ok()) return Fail(chosen.status());
    opt.templates.num_templates = *chosen;
    std::printf("elbow-tuned k = %d\n", opt.templates.num_templates);
  }
  auto model = core::LearnedWmpModel::Train(*records, indices, opt);
  if (!model.ok()) return Fail(model.status());
  if (Status st = model->SaveToFile(model_path); !st.ok()) return Fail(st);
  std::printf(
      "trained on %zu queries (%zu workloads of %d), saved %zu bytes to %s\n",
      records->size(), model->train_stats().num_workloads, opt.batch_size,
      model->SerializedSize().ValueOr(0), model_path.c_str());
  // Phase breakdown, so a training regression is attributable from the CLI:
  // featurize covers template learning (TR1-TR3) + workload histograms
  // (TR4-TR5); bin/grow/round-update split the tree trainer's fit (TR6).
  const core::LearnedWmpTrainStats& ts = model->train_stats();
  std::printf(
      "phase timing: featurize %.1f ms (templates %.1f + histograms %.1f), "
      "regressor %.1f ms (bin %.1f / grow %.1f / round-update %.1f)\n",
      ts.template_ms + ts.histogram_ms, ts.template_ms, ts.histogram_ms,
      ts.regressor_ms, ts.regressor_timing.bin_ms, ts.regressor_timing.grow_ms,
      ts.regressor_timing.update_ms);
  if (publish) {
    auto fresh =
        std::make_shared<const core::LearnedWmpModel>(std::move(*model));
    // With --connect this is a REAL rollout: the artifact crosses a
    // process boundary into a running `wmpctl serve`. Without it, fall
    // back to the in-process rehearsal (first train: swap onto a live
    // service that starts on the fresh model itself).
    const std::string address = FlagOr(flags, "connect", "");
    if (!address.empty()) {
      return RunRemotePublish(address, FlagOr(flags, "name", "default"),
                              *records, *fresh, opt.batch_size);
    }
    return RunPublishRehearsal(*records, previous ? previous : fresh, fresh,
                               opt.batch_size);
  }
  return 0;
}

int CmdEvaluate(const std::map<std::string, std::string>& flags) {
  const std::string log_path = FlagOr(flags, "log", "");
  const std::string model_path = FlagOr(flags, "model", "");
  if (log_path.empty() || model_path.empty()) return Usage();

  auto records = workloads::LoadQueryLog(log_path);
  if (!records.ok()) return Fail(records.status());
  auto model = core::LearnedWmpModel::LoadFromFile(model_path);
  if (!model.ok()) return Fail(model.status());

  core::WorkloadSetOptions wopt;
  wopt.batch_size = std::atoi(FlagOr(flags, "batch", "10").c_str());
  auto batches = core::BuildWorkloads(*records, core::AllIndices(records->size()),
                                      wopt);
  if (batches.empty()) {
    std::fprintf(stderr, "log too small for one workload of %d queries\n",
                 wopt.batch_size);
    return 1;
  }
  // One batched scoring session over the whole eval set.
  engine::BatchScorer scorer(&*model);
  auto learned_result = scorer.ScoreWorkloads(*records, batches);
  if (!learned_result.ok()) return Fail(learned_result.status());
  const std::vector<double>& learned = learned_result->predictions;
  const engine::BatchScorerStats& sstats = learned_result->stats;
  std::vector<double> labels, dbms;
  for (const auto& b : batches) {
    labels.push_back(b.label_mb);
    dbms.push_back(core::DbmsWorkloadEstimate(*records, b.query_indices));
  }
  std::printf("%zu workloads of %d queries\n", batches.size(), wopt.batch_size);
  std::printf("scored %zu queries in %.1f ms (%.0f queries/sec, %zu threads)\n",
              sstats.num_queries, sstats.elapsed_ms, sstats.queries_per_sec,
              util::DefaultParallelism());
  std::printf("LearnedWMP      RMSE %.1f MB   MAPE %.1f%%\n",
              ml::Rmse(labels, learned), ml::Mape(labels, learned));
  const bool has_dbms =
      std::any_of(dbms.begin(), dbms.end(), [](double v) { return v > 0; });
  if (has_dbms) {
    std::printf("SingleWMP-DBMS  RMSE %.1f MB   MAPE %.1f%%\n",
                ml::Rmse(labels, dbms), ml::Mape(labels, dbms));
  }
  return 0;
}

int CmdPredict(const std::map<std::string, std::string>& flags) {
  const std::string log_path = FlagOr(flags, "log", "");
  const std::string model_path = FlagOr(flags, "model", "");
  if (log_path.empty() || model_path.empty()) return Usage();

  auto records = workloads::LoadQueryLog(log_path);
  if (!records.ok()) return Fail(records.status());
  auto model = core::LearnedWmpModel::LoadFromFile(model_path);
  if (!model.ok()) return Fail(model.status());

  // The whole log is one workload; score it through the batched session.
  engine::BatchScorer scorer(&*model);
  auto predictions =
      scorer.ScoreLog(*records, static_cast<int>(records->size()));
  if (!predictions.ok()) return Fail(predictions.status());
  const double prediction = predictions->predictions.front();
  std::printf("workload of %zu queries -> predicted %.1f MB\n",
              records->size(), prediction);
  double actual = 0.0;
  for (const auto& r : *records) actual += r.actual_memory_mb;
  if (actual > 0.0) {
    std::printf("labeled actual: %.1f MB (error %+.1f%%)\n", actual,
                100.0 * (prediction - actual) / actual);
  }
  return 0;
}

// Drives N concurrent clients against the async scoring service and
// reports what an operator tuning the admission path wants to see:
// sustained queries/sec, client-observed latency, and cache effectiveness.
int CmdServeBench(const std::map<std::string, std::string>& flags) {
  const std::string log_path = FlagOr(flags, "log", "");
  const std::string model_path = FlagOr(flags, "model", "");
  if (log_path.empty() || model_path.empty()) return Usage();

  auto records = workloads::LoadQueryLog(log_path);
  if (!records.ok()) return Fail(records.status());
  auto model = core::LearnedWmpModel::LoadFromFile(model_path);
  if (!model.ok()) return Fail(model.status());

  const int clients = std::max(std::atoi(FlagOr(flags, "clients", "8").c_str()), 1);
  const int num_shards = std::max(std::atoi(FlagOr(flags, "shards", "1").c_str()), 1);
  const int batch_size = std::max(std::atoi(FlagOr(flags, "batch", "10").c_str()), 1);
  const int repeat = std::max(std::atoi(FlagOr(flags, "repeat", "3").c_str()), 1);

  engine::ScoringServiceOptions sopt;
  sopt.max_batch = static_cast<size_t>(
      std::max(std::atoi(FlagOr(flags, "max-batch", "64").c_str()), 1));
  sopt.max_delay_us = std::atoll(FlagOr(flags, "max-delay-us", "200").c_str());
  sopt.adaptive_flush = FlagOr(flags, "adaptive", "1") != "0";
  sopt.cache_capacity = static_cast<size_t>(
      std::atoll(FlagOr(flags, "cache", "4096").c_str()));
  sopt.template_cache_capacity = static_cast<size_t>(
      std::atoll(FlagOr(flags, "template-cache", "65536").c_str()));
  // All shards serve the one trained model; sharding spreads dispatch.
  engine::ScoringService service(
      std::vector<const core::LearnedWmpModel*>(
          static_cast<size_t>(num_shards), &*model),
      sopt);

  const auto batches = engine::MakeConsecutiveBatches(records->size(), batch_size);
  if (batches.empty()) {
    std::fprintf(stderr, "log too small for one workload of %d queries\n",
                 batch_size);
    return 1;
  }

  std::vector<double> latencies_us;  // merged after the run
  std::vector<std::vector<double>> per_client(static_cast<size_t>(clients));
  util::Latch start(static_cast<size_t>(clients) + 1);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  std::atomic<uint64_t> errors{0};
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<double>& lat = per_client[static_cast<size_t>(c)];
      lat.reserve(batches.size() * static_cast<size_t>(repeat));
      const std::string tenant = StrFormat("client-%d", c);
      start.ArriveAndWait();
      for (int r = 0; r < repeat; ++r) {
        for (const auto& b : batches) {
          Stopwatch sw;
          auto fut = service.Submit(tenant, *records, b.query_indices);
          auto outcome = fut.get();
          lat.push_back(sw.ElapsedMicros());
          if (!outcome.ok()) errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  Stopwatch wall;
  start.ArriveAndWait();
  for (auto& t : threads) t.join();
  const double wall_s = wall.ElapsedSeconds();
  service.Stop();

  for (auto& v : per_client) {
    latencies_us.insert(latencies_us.end(), v.begin(), v.end());
  }
  const auto pct = [&](double p) {
    return util::PercentileInPlace(&latencies_us, p);
  };
  const engine::ServiceStats st = service.stats();
  // Every client submits every workload once per repeat pass, so scale the
  // per-pass query count (the tail workload may be partial) by completed
  // workloads rather than assuming `batch_size` queries each.
  size_t pass_queries = 0;
  for (const auto& b : batches) pass_queries += b.query_indices.size();
  const uint64_t queries =
      st.completed * static_cast<uint64_t>(pass_queries) / batches.size();
  std::printf(
      "serve-bench: %d clients x %d shards, batch=%d, repeat=%d, "
      "adaptive=%s\n",
      clients, num_shards, batch_size, repeat,
      sopt.adaptive_flush ? "on" : "off");
  std::printf("  %llu workloads (%llu queries) in %.2f s -> %.0f queries/sec\n",
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(queries), wall_s,
              wall_s > 0 ? static_cast<double>(queries) / wall_s : 0.0);
  // Named locals: printf argument evaluation order is unspecified, and
  // back() is only the max after a pct() call has sorted the sample.
  const double p50 = pct(0.50), p99 = pct(0.99);
  const double lat_max = latencies_us.empty() ? 0.0 : latencies_us.back();
  std::printf("  latency p50 %.0f us   p99 %.0f us   max %.0f us\n", p50, p99,
              lat_max);
  std::printf("  flushes %llu (avg batch %.1f): %llu full, %llu adaptive, "
              "%llu deadline, %llu drain\n",
              static_cast<unsigned long long>(st.flushes), st.avg_batch(),
              static_cast<unsigned long long>(st.flushes_full),
              static_cast<unsigned long long>(st.flushes_adaptive),
              static_cast<unsigned long long>(st.flushes_deadline),
              static_cast<unsigned long long>(st.flushes_drain));
  std::printf("  histogram cache hit rate %.1f%% (%llu/%llu)   "
              "template-id cache hit rate %.1f%% (%llu/%llu)   errors %llu\n",
              100.0 * st.cache_hit_rate(),
              static_cast<unsigned long long>(st.cache_hits),
              static_cast<unsigned long long>(st.cache_hits + st.cache_misses),
              100.0 * st.template_cache_hit_rate(),
              static_cast<unsigned long long>(st.template_cache_hits),
              static_cast<unsigned long long>(st.template_cache_hits +
                                              st.template_cache_misses),
              static_cast<unsigned long long>(errors.load()));
  std::printf("  traversal kernel: %s\n",
              ml::TraverseKernelIdName(st.traverse_kernel_id));
  const std::string cold = ColdPhaseSplitLine(*records, &*model);
  if (!cold.empty()) std::printf("  %s\n", cold.c_str());
  return errors.load() == 0 ? 0 : 1;
}

// wmpctl serve — the out-of-process serving daemon: a wire server fronting
// a sharded ScoringService, with a ModelRegistry so remote publishes are
// rollback-able. --reactor swaps the blocking thread-per-connection server
// for the single-threaded epoll reactor (same protocol, same scores; the
// reactor additionally speaks the pipelined score frames). Blocks until
// SIGINT/SIGTERM.
int CmdServe(const std::map<std::string, std::string>& flags) {
  const std::string address = FlagOr(flags, "listen", "");
  const std::string model_path = FlagOr(flags, "model", "");
  if (address.empty() || model_path.empty()) return Usage();
  const std::string name = FlagOr(flags, "name", "default");
  const int num_shards =
      std::max(std::atoi(FlagOr(flags, "shards", "1").c_str()), 1);

  // Block the shutdown signals FIRST, before any thread exists: every
  // thread the service/server spawn inherits this mask, so a
  // process-directed SIGINT/SIGTERM can only be delivered to the sigwait
  // below — delivered to a dispatcher thread it would kill the process
  // via the default disposition instead of draining.
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);

  auto loaded = core::LearnedWmpModel::LoadFromFile(model_path);
  if (!loaded.ok()) return Fail(loaded.status());
  auto model =
      std::make_shared<const core::LearnedWmpModel>(std::move(*loaded));

  engine::ScoringServiceOptions sopt;
  sopt.max_batch = static_cast<size_t>(
      std::max(std::atoi(FlagOr(flags, "max-batch", "64").c_str()), 1));
  sopt.max_delay_us = std::atoll(FlagOr(flags, "max-delay-us", "200").c_str());
  sopt.adaptive_flush = FlagOr(flags, "adaptive", "1") != "0";
  sopt.cache_capacity =
      static_cast<size_t>(std::atoll(FlagOr(flags, "cache", "4096").c_str()));
  sopt.template_cache_capacity = static_cast<size_t>(
      std::atoll(FlagOr(flags, "template-cache", "65536").c_str()));
  engine::ScoringService service(
      std::vector<std::shared_ptr<const core::LearnedWmpModel>>(
          static_cast<size_t>(num_shards), model),
      sopt);

  // The warm corpus must outlive the service (borrowed by the background
  // warmer), so it lives here in main's scope.
  std::vector<workloads::QueryRecord> warm_records;
  const std::string warm_log = FlagOr(flags, "warm-log", "");
  if (!warm_log.empty()) {
    auto records = workloads::LoadQueryLog(warm_log);
    if (!records.ok()) return Fail(records.status());
    warm_records = std::move(*records);
    service.SetWarmCorpus(&warm_records);
    std::printf("warm corpus: %zu queries from %s\n", warm_records.size(),
                warm_log.c_str());
  }

  engine::ModelRegistry registry;
  // The artifact we booted on is epoch 1, so the first remote publish is
  // already rollback-able.
  if (auto recorded = registry.Record(name, model); !recorded.ok()) {
    return Fail(recorded.status());
  }

  const bool use_reactor = FlagOr(flags, "reactor", "0") != "0";
  std::unique_ptr<net::WireServer> blocking;
  std::unique_ptr<net::ReactorServer> reactor;
  if (use_reactor) {
    reactor = std::make_unique<net::ReactorServer>(&service, &registry, name);
  } else {
    blocking = std::make_unique<net::WireServer>(&service, &registry, name);
  }
  Status listen = use_reactor ? reactor->Listen(address)
                              : blocking->Listen(address);
  if (!listen.ok()) return Fail(listen);

  // The accept/event loop runs in the background; this thread sigwaits for
  // the (already blocked) shutdown signals and tears down with ordinary
  // signal-unsafe calls, not inside a handler.
  Status started = use_reactor ? reactor->Start() : blocking->Start();
  if (!started.ok()) return Fail(started);
  std::printf("serving '%s' (%d shard%s, %s) on %s — SIGINT/SIGTERM stops\n",
              name.c_str(), num_shards, num_shards == 1 ? "" : "s",
              use_reactor ? "reactor" : "blocking",
              use_reactor ? reactor->address().c_str()
                          : blocking->address().c_str());
  std::fflush(stdout);
  int sig = 0;
  sigwait(&set, &sig);
  std::printf("signal %d: shutting down\n", sig);
  if (use_reactor) {
    reactor->Shutdown();
  } else {
    blocking->Shutdown();
  }
  service.Stop();

  const engine::ServiceStats st = service.stats();
  const net::WireServerCounters wc =
      use_reactor ? reactor->stats().wire : blocking->stats();
  std::printf(
      "served %llu requests (%llu failed) over %llu connections, "
      "%llu frames, %llu protocol errors\n",
      static_cast<unsigned long long>(st.completed + st.failed),
      static_cast<unsigned long long>(st.failed),
      static_cast<unsigned long long>(wc.connections_accepted),
      static_cast<unsigned long long>(wc.frames_served),
      static_cast<unsigned long long>(wc.protocol_errors));
  if (use_reactor) {
    const net::ReactorCounters rc = reactor->stats();
    std::printf(
        "  reactor: %llu pipelined frames, %llu backpressure pauses, "
        "%llu idle connections reaped\n",
        static_cast<unsigned long long>(rc.pipelined_frames),
        static_cast<unsigned long long>(rc.backpressure_pauses),
        static_cast<unsigned long long>(rc.idle_closed));
  }
  std::printf(
      "  models published %llu, template entries warmed %llu, histogram "
      "hit rate %.1f%%, template hit rate %.1f%%, traversal kernel %s\n",
      static_cast<unsigned long long>(st.models_published),
      static_cast<unsigned long long>(st.template_entries_warmed),
      100.0 * st.cache_hit_rate(), 100.0 * st.template_cache_hit_rate(),
      ml::TraverseKernelIdName(st.traverse_kernel_id));
  return 0;
}

// wmpctl score — chunked log scoring: the log streams through
// QueryLogReader in --chunk-sized slices, each scored remotely
// (--connect) or locally (--model), so the resident set never exceeds
// ~one chunk of parsed records regardless of log size. With --pipeline[=N]
// (requires --connect and a --reactor server) each workload travels as its
// own pipelined frame with up to N in flight, so wire latency amortizes
// instead of gating every workload on a round trip.
int CmdScore(const std::map<std::string, std::string>& flags) {
  const std::string log_path = FlagOr(flags, "log", "");
  const std::string address = FlagOr(flags, "connect", "");
  const std::string model_path = FlagOr(flags, "model", "");
  if (log_path.empty() || (address.empty() && model_path.empty())) {
    return Usage();
  }
  const int batch_size =
      std::max(std::atoi(FlagOr(flags, "batch", "10").c_str()), 1);
  const size_t chunk = static_cast<size_t>(
      std::max(std::atoll(FlagOr(flags, "chunk", "4096").c_str()),
               static_cast<long long>(batch_size)));
  const std::string tenant = FlagOr(flags, "tenant", "wmpctl");

  const std::string pipeline_flag = FlagOr(flags, "pipeline", "");
  size_t pipeline_window = 0;  // 0 = plain request/response client
  if (!pipeline_flag.empty() && pipeline_flag != "0") {
    if (address.empty()) {
      std::fprintf(stderr, "--pipeline requires --connect\n");
      return Usage();
    }
    // Bare --pipeline parses as "1"; treat it as "use the default window"
    // rather than a window of one (which would be plain request/response
    // with extra framing).
    const long long n = std::atoll(pipeline_flag.c_str());
    pipeline_window = n > 1 ? static_cast<size_t>(n)
                            : net::AsyncWireClientOptions{}.max_inflight;
  }

  Result<core::LearnedWmpModel> local_model = Status::NotFound("unused");
  std::unique_ptr<engine::BatchScorer> local;
  std::unique_ptr<net::WireClient> remote;
  std::unique_ptr<net::AsyncWireClient> pipelined;
  if (pipeline_window > 0) {
    net::AsyncWireClientOptions aopt;
    aopt.max_inflight = pipeline_window;
    auto connected = net::AsyncWireClient::Connect(address, aopt);
    if (!connected.ok()) return Fail(connected.status());
    pipelined = std::move(*connected);
  } else if (!address.empty()) {
    remote = std::make_unique<net::WireClient>(address);
    if (Status st = remote->Connect(); !st.ok()) return Fail(st);
  } else {
    local_model = core::LearnedWmpModel::LoadFromFile(model_path);
    if (!local_model.ok()) return Fail(local_model.status());
    local = std::make_unique<engine::BatchScorer>(&*local_model);
  }

  auto reader = workloads::QueryLogReader::Open(log_path);
  if (!reader.ok()) return Fail(reader.status());

  std::vector<workloads::QueryRecord> window;  // current chunk + carry
  std::vector<double> predictions, labels;
  std::string cold_split;  // phase split, sampled from the first chunk
  size_t total_queries = 0, failures = 0, max_resident = 0;
  Stopwatch wall;
  for (;;) {
    auto appended = reader->ReadChunk(chunk, &window);
    if (!appended.ok()) return Fail(appended.status());
    if (window.empty()) break;
    // Score whole workloads; carry the tail queries into the next chunk so
    // workload boundaries are identical to a whole-log load. The final
    // (post-EOF) pass scores the partial tail workload too.
    size_t usable = window.size() - window.size() % static_cast<size_t>(
                                        batch_size);
    if (reader->exhausted()) usable = window.size();
    if (usable == 0 && !reader->exhausted()) continue;
    if (usable == 0) break;
    const auto batches = engine::MakeConsecutiveBatches(usable, batch_size);
    max_resident = std::max(max_resident, window.size());
    std::vector<workloads::QueryRecord> scored;
    scored.reserve(usable);
    for (size_t i = 0; i < usable; ++i) {
      scored.push_back(std::move(window[i]));
    }
    window.erase(window.begin(), window.begin() + static_cast<long>(usable));
    if (cold_split.empty()) {
      // Sampled before the pipelined branch moves the records out; the few
      // milliseconds it costs are inside the wall clock, like the log
      // parsing it re-measures.
      cold_split = ColdPhaseSplitLine(
          scored, local != nullptr ? &*local_model : nullptr);
    }
    if (pipelined != nullptr) {
      // One workload per pipelined frame: submission only blocks when the
      // in-flight window is full, so up to `pipeline_window` round trips
      // overlap. Futures resolve in the server's completion order; we
      // harvest them in submission order, which re-serializes the results.
      // Records are move-only, so each workload's slice is moved out of
      // `scored` and its label taken here (the shared label loop below is
      // skipped for this branch).
      std::vector<std::future<Result<net::ScoreResponse>>> futures;
      futures.reserve(batches.size());
      for (const auto& b : batches) {
        std::vector<workloads::QueryRecord> sub;
        sub.reserve(b.query_indices.size());
        double label = 0.0;
        for (uint32_t qi : b.query_indices) {
          label += scored[qi].actual_memory_mb;
          sub.push_back(std::move(scored[qi]));
        }
        labels.push_back(label);
        total_queries += b.query_indices.size();
        core::WorkloadBatch whole;
        whole.query_indices.resize(sub.size());
        for (uint32_t i = 0; i < whole.query_indices.size(); ++i) {
          whole.query_indices[i] = i;
        }
        auto submitted =
            pipelined->SubmitScore(tenant, sub, {std::move(whole)});
        if (!submitted.ok()) return Fail(submitted.status());
        futures.push_back(std::move(*submitted));
      }
      for (auto& f : futures) {
        auto got = f.get();
        if (!got.ok()) return Fail(got.status());
        if (got->size() == 1 && got->ok[0]) {
          predictions.push_back(got->predictions[0]);
        } else {
          predictions.push_back(0.0);
          ++failures;
        }
      }
    } else if (remote != nullptr) {
      auto got = remote->ScoreWorkloads(tenant, scored, batches);
      if (!got.ok()) return Fail(got.status());
      for (size_t w = 0; w < batches.size(); ++w) {
        if ((*got)[w].ok()) {
          predictions.push_back(*(*got)[w]);
        } else {
          predictions.push_back(0.0);
          ++failures;
        }
      }
    } else {
      auto got = local->ScoreWorkloads(scored, batches);
      if (!got.ok()) return Fail(got.status());
      for (double p : got->predictions) predictions.push_back(p);
    }
    if (pipelined == nullptr) {
      for (const auto& b : batches) {
        double label = 0.0;
        for (uint32_t qi : b.query_indices) {
          label += scored[qi].actual_memory_mb;
        }
        labels.push_back(label);
        total_queries += b.query_indices.size();
      }
    }
    if (reader->exhausted()) break;
  }
  const double seconds = wall.ElapsedSeconds();
  if (predictions.empty()) {
    std::fprintf(stderr, "log produced no workloads\n");
    return 1;
  }
  std::printf("scored %zu workloads (%zu queries) in %.2f s via %s%s — "
              "%.0f queries/sec, resident set capped at %zu records "
              "(chunk %zu)\n",
              predictions.size(), total_queries, seconds,
              !address.empty() ? address.c_str() : "local model",
              pipelined != nullptr ? " (pipelined)" : "",
              seconds > 0 ? static_cast<double>(total_queries) / seconds : 0.0,
              max_resident, chunk);
  const bool labeled =
      std::any_of(labels.begin(), labels.end(), [](double v) { return v > 0; });
  if (labeled && failures == 0) {
    std::printf("LearnedWMP      RMSE %.1f MB   MAPE %.1f%%\n",
                ml::Rmse(labels, predictions), ml::Mape(labels, predictions));
  }
  if (!cold_split.empty()) std::printf("%s\n", cold_split.c_str());
  if (pipelined != nullptr) {
    // The async client only speaks score frames; fetch the closing stats
    // over a throwaway plain client (the reactor serves both dialects).
    pipelined->Close();
    remote = std::make_unique<net::WireClient>(address);
  }
  if (remote != nullptr) {
    if (auto stats = remote->Stats(); stats.ok()) {
      std::printf("server: histogram hit rate %.1f%%, template hit rate "
                  "%.1f%%, %llu entries warmed, traversal kernel %s\n",
                  100.0 * stats->service.cache_hit_rate(),
                  100.0 * stats->service.template_cache_hit_rate(),
                  static_cast<unsigned long long>(
                      stats->service.template_entries_warmed),
                  ml::TraverseKernelIdName(stats->service.traverse_kernel_id));
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "%zu workloads failed to score\n", failures);
    return 1;
  }
  return 0;
}

int CmdRollback(const std::map<std::string, std::string>& flags) {
  const std::string address = FlagOr(flags, "connect", "");
  if (address.empty()) return Usage();
  const std::string name = FlagOr(flags, "name", "default");
  net::WireClient client(address);
  auto epoch = client.Rollback(name);
  if (!epoch.ok()) return Fail(epoch.status());
  std::printf("rolled '%s' back to registry epoch %llu on %s\n", name.c_str(),
              static_cast<unsigned long long>(*epoch), address.c_str());
  return 0;
}

void PrintRollout(const char* op, const net::FleetRolloutReport& report) {
  for (const net::FleetNodeRollout& node : report.nodes) {
    std::printf("  %-28s %s%s%s%s epoch=%llu%s%s\n", node.address.c_str(),
                node.staged ? "staged " : "",
                node.committed ? "committed " : "",
                node.aborted ? "aborted " : "",
                node.compensated ? "rolled-back " : "",
                static_cast<unsigned long long>(node.epoch),
                node.error.empty() ? "" : " error=",
                node.error.c_str());
  }
  if (report.ok) {
    std::printf("fleet %s ok: every node on epoch %llu\n", op,
                static_cast<unsigned long long>(report.epoch));
    if (!report.failure.empty()) {
      std::printf("  %s\n", report.failure.c_str());
    }
  } else {
    std::fprintf(stderr, "fleet %s FAILED: %s\n", op,
                 report.failure.c_str());
  }
}

// wmpctl fleet — drive a predictor fleet through net::FleetRouter:
// health-tracked failover scoring, probes, and the two-phase coordinated
// publish/rollback (any partial failure compensates so the fleet never
// serves mixed epochs).
int CmdFleet(int argc, char** argv,
             const std::map<std::string, std::string>& flags) {
  const std::string verb = argc >= 3 ? argv[2] : "";
  const std::string nodes_flag = FlagOr(flags, "nodes", "");
  if (nodes_flag.empty() || verb.empty()) return Usage();
  std::vector<std::string> addresses;
  for (size_t start = 0; start <= nodes_flag.size();) {
    size_t comma = nodes_flag.find(',', start);
    if (comma == std::string::npos) comma = nodes_flag.size();
    if (comma > start) {
      addresses.push_back(nodes_flag.substr(start, comma - start));
    }
    start = comma + 1;
  }
  if (addresses.empty()) return Usage();

  net::FleetRouterOptions ropt;
  ropt.connect_timeout_ms =
      std::atoi(FlagOr(flags, "connect-timeout-ms", "1000").c_str());
  ropt.request_timeout_ms =
      std::atoi(FlagOr(flags, "request-timeout-ms", "2000").c_str());
  ropt.control_timeout_ms = ropt.request_timeout_ms;
  ropt.probe_interval_ms =
      std::atoi(FlagOr(flags, "probe-interval-ms", "200").c_str());
  ropt.max_score_attempts =
      std::max(std::atoi(FlagOr(flags, "attempts", "4").c_str()), 1);
  ropt.seed = std::strtoull(FlagOr(flags, "seed", "1").c_str(), nullptr, 10);
  net::FleetRouter router(addresses, ropt);
  if (Status st = router.Start(); !st.ok()) return Fail(st);
  const std::string name = FlagOr(flags, "name", "default");

  if (verb == "status") {
    for (const net::FleetNodeStatus& node : router.Nodes()) {
      std::printf("  %-28s %-8s epoch=%llu failures=%d probes=%llu/%llu\n",
                  node.address.c_str(), net::NodeHealthName(node.health),
                  static_cast<unsigned long long>(node.observed_epoch),
                  node.consecutive_failures,
                  static_cast<unsigned long long>(node.probes_ok),
                  static_cast<unsigned long long>(node.probes_ok +
                                                  node.probes_failed));
    }
    const auto& epochs = router.epoch_map();
    std::printf("fleet target epoch %llu, %s\n",
                static_cast<unsigned long long>(epochs.target()),
                epochs.Mixed() ? "MIXED EPOCHS" : "epochs consistent");
    return epochs.Mixed() ? 1 : 0;
  }

  if (verb == "publish") {
    const std::string model_path = FlagOr(flags, "model", "");
    if (model_path.empty()) return Usage();
    auto model = core::LearnedWmpModel::LoadFromFile(model_path);
    if (!model.ok()) return Fail(model.status());
    const net::FleetRolloutReport report = router.PublishAll(name, *model);
    PrintRollout("publish", report);
    return report.ok ? 0 : 1;
  }

  if (verb == "rollback") {
    const net::FleetRolloutReport report = router.RollbackAll(name);
    PrintRollout("rollback", report);
    return report.ok ? 0 : 1;
  }

  if (verb == "score") {
    const std::string log_path = FlagOr(flags, "log", "");
    if (log_path.empty()) return Usage();
    const int batch_size =
        std::max(std::atoi(FlagOr(flags, "batch", "10").c_str()), 1);
    const size_t chunk = static_cast<size_t>(
        std::max(std::atoll(FlagOr(flags, "chunk", "4096").c_str()),
                 static_cast<long long>(batch_size)));
    const std::string tenant = FlagOr(flags, "tenant", "wmpctl");
    auto reader = workloads::QueryLogReader::Open(log_path);
    if (!reader.ok()) return Fail(reader.status());
    std::vector<workloads::QueryRecord> window;
    size_t workloads_scored = 0, workload_failures = 0, call_failures = 0;
    double checksum = 0.0;  // order-independent fingerprint of the scores
    Stopwatch wall;
    for (;;) {
      auto appended = reader->ReadChunk(chunk, &window);
      if (!appended.ok()) return Fail(appended.status());
      if (window.empty()) break;
      size_t usable =
          window.size() - window.size() % static_cast<size_t>(batch_size);
      if (reader->exhausted()) usable = window.size();
      if (usable == 0 && !reader->exhausted()) continue;
      if (usable == 0) break;
      const auto batches = engine::MakeConsecutiveBatches(usable, batch_size);
      std::vector<workloads::QueryRecord> scored;
      scored.reserve(usable);
      for (size_t i = 0; i < usable; ++i) {
        scored.push_back(std::move(window[i]));
      }
      window.erase(window.begin(),
                   window.begin() + static_cast<long>(usable));
      auto got = router.ScoreWorkloads(tenant, scored, batches);
      if (!got.ok()) {
        // Every attempt on every node failed; count the whole chunk but
        // keep driving — the fleet may recover mid-log.
        std::fprintf(stderr, "chunk failed after all retries: %s\n",
                     got.status().ToString().c_str());
        call_failures += batches.size();
        continue;
      }
      for (const Result<double>& outcome : *got) {
        workloads_scored++;
        if (outcome.ok()) {
          checksum += *outcome;
        } else {
          workload_failures++;
        }
      }
    }
    const double seconds = wall.ElapsedSeconds();
    const net::FleetRouterCounters counters = router.counters();
    std::printf(
        "fleet scored %zu workloads in %.2fs (%zu workload failures, %zu "
        "lost to dead fleet), score checksum %.6f\n",
        workloads_scored, seconds, workload_failures, call_failures,
        checksum);
    std::printf(
        "  router: %llu calls, %llu retries/failovers, %llu exhausted\n",
        static_cast<unsigned long long>(counters.scores),
        static_cast<unsigned long long>(counters.score_retries),
        static_cast<unsigned long long>(counters.score_failures));
    for (const net::FleetNodeStatus& node : router.Nodes()) {
      std::printf("  %-28s %-8s scores=%llu/%llu\n", node.address.c_str(),
                  net::NodeHealthName(node.health),
                  static_cast<unsigned long long>(node.scores_ok),
                  static_cast<unsigned long long>(node.scores_ok +
                                                  node.scores_failed));
    }
    return (workload_failures == 0 && call_failures == 0) ? 0 : 1;
  }

  return Usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  const auto flags = ParseFlags(argc, argv);
  util::SetDefaultParallelism(std::atoi(FlagOr(flags, "threads", "0").c_str()));
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "train") return CmdTrain(flags);
  if (cmd == "evaluate") return CmdEvaluate(flags);
  if (cmd == "predict") return CmdPredict(flags);
  if (cmd == "serve-bench") return CmdServeBench(flags);
  if (cmd == "serve") return CmdServe(flags);
  if (cmd == "score") return CmdScore(flags);
  if (cmd == "rollback") return CmdRollback(flags);
  if (cmd == "fleet") return CmdFleet(argc, argv, flags);
  return Usage();
}
